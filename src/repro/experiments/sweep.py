"""Parameter sweeps over scenarios and schedulers.

The paper's evaluation is a grid: mechanism x ζtarget x Φmax.  This
module runs that grid on the fast simulator and pairs each simulated
point with its closed-form prediction so benches can print both (the
paper presents them as separate analysis and simulation figures).

Two entry points share one sharded code path (both are thin
compatibility wrappers over :func:`repro.experiments.spec.run_study`,
the declarative study executor):

* :func:`sweep_zeta_targets` — one Φmax budget, the historical API
  (Figs. 5/7 or 6/8 individually);
* :func:`sweep_grid` — the complete paper grid, flattening all four
  axes (mechanism × ζtarget × Φmax × replicate) into
  :class:`~repro.experiments.runner.RunSpec` shards; Figs. 5–8 are one
  call with ``phi_maxes=(Tepoch/1000, Tepoch/100)``.

Both accept ``n_replicates`` (or explicit ``replicate_seeds``) to run
every cell across independent seeds and annotate each point with
Student-t confidence intervals, and ``executor`` to scatter the shards
over a process pool.  When the executor provides the streaming
:meth:`~repro.experiments.parallel.Executor.imap` path, completed cells
are reported through the ``progress`` callback as they finish, so a CLI
or bench can render tables incrementally instead of blocking on the
slowest cell — the assembled result is byte-identical either way
because reassembly is by shard index, never completion order.  The full
sharding/seeding contract is documented in
:mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.analysis import AnalysisPoint, evaluate_schedulers
from ..errors import ConfigurationError
from .engine import resolve_engine
from .parallel import Executor, SerialExecutor, replicate_seed
from .reporting import format_csv
from .runner import RunResult, RunSpec, SchedulerFactory, default_factories, execute_run_spec
from .scenario import Scenario
from .stats import IntervalEstimate, estimates_from_runs

__all__ = [
    "SchedulerFactory",
    "default_factories",
    "SweepPoint",
    "SweepResult",
    "GridResult",
    "GRID_EXPORT_COLUMNS",
    "ProgressCallback",
    "sweep_zeta_targets",
    "sweep_grid",
]

#: Streaming observer: ``progress(spec, result, completed, total)`` is
#: invoked once per finished shard, in completion order, where
#: *completed* counts shards done so far out of *total*.
ProgressCallback = Callable[[RunSpec, RunResult, int, int], None]


@dataclass
class SweepPoint:
    """One (mechanism, ζtarget) cell of the evaluation grid.

    With replication the cell holds every replicate's run plus interval
    estimates; ``simulated`` stays the replicate-0 run for backward
    compatibility, and the ζ/Φ/ρ properties report means across
    replicates (identical to the single run when there is only one).
    """

    mechanism: str
    zeta_target: float
    simulated: RunResult
    predicted: Optional[AnalysisPoint]
    replicates: List[RunResult] = field(default_factory=list)
    estimates: Optional[Dict[str, IntervalEstimate]] = None

    def __post_init__(self) -> None:
        if not self.replicates:
            self.replicates = [self.simulated]
        if self.estimates is None:
            self.estimates = estimates_from_runs(self.replicates)

    @property
    def n_replicates(self) -> int:
        """Number of seed replicates behind this cell."""
        return len(self.replicates)

    @property
    def zeta(self) -> float:
        """Mean probed capacity per epoch (the paper's ζ plots)."""
        return self.estimates["mean_zeta"].mean

    @property
    def phi(self) -> float:
        """Mean probing overhead per epoch (the paper's Φ plots)."""
        return self.estimates["mean_phi"].mean

    @property
    def rho(self) -> float:
        """Mean per-unit cost (the paper's ρ plots)."""
        return self.estimates["mean_rho"].mean

    def interval(self, metric: str) -> IntervalEstimate:
        """The confidence interval for *metric* ('zeta', 'phi', 'rho')."""
        key = metric if metric in self.estimates else f"mean_{metric}"
        return self.estimates[key]


@dataclass
class SweepResult:
    """One Φmax budget's grid, keyed by mechanism then ζtarget order."""

    points: Dict[str, List[SweepPoint]]
    zeta_targets: Sequence[float]

    @property
    def n_replicates(self) -> int:
        """Replicates per cell (uniform across the grid)."""
        for column in self.points.values():
            for point in column:
                return point.n_replicates
        return 0

    def series(self, metric: str) -> Dict[str, List[float]]:
        """Extract one metric as {mechanism: [value per target]}."""
        return {
            mechanism: [getattr(point, metric) for point in column]
            for mechanism, column in self.points.items()
        }

    def ci_series(self, metric: str) -> Dict[str, List[IntervalEstimate]]:
        """One metric's interval estimates, {mechanism: [CI per target]}."""
        return {
            mechanism: [point.interval(metric) for point in column]
            for mechanism, column in self.points.items()
        }

    def predicted_series(self, metric: str) -> Dict[str, List[float]]:
        """Same, from the closed-form predictions."""
        return {
            mechanism: [
                getattr(point.predicted, metric) if point.predicted else float("nan")
                for point in column
            ]
            for mechanism, column in self.points.items()
        }


def _finite_or_none(value: Optional[float]) -> Optional[float]:
    """*value* as a float, or None when missing or non-finite.

    Serialization helper: strict JSON has no ``Infinity``/``NaN``
    literals, and a single-replicate cell's CI half-width is infinite.
    """
    if value is None or not math.isfinite(value):
        return None
    return float(value)


#: Column order shared by :meth:`GridResult.to_csv` and ``to_json`` cells.
GRID_EXPORT_COLUMNS = (
    "engine", "phi_max", "zeta_target", "mechanism", "n_replicates",
    "zeta", "zeta_low", "zeta_high",
    "phi", "phi_low", "phi_high",
    "rho", "rho_low", "rho_high",
    "predicted_zeta", "predicted_phi", "predicted_rho",
)


@dataclass
class GridResult:
    """The full paper grid: one :class:`SweepResult` per Φmax budget."""

    budgets: Dict[float, SweepResult]
    phi_maxes: Tuple[float, ...]
    zeta_targets: Tuple[float, ...]
    #: The engine every cell ran on (an engine-registry name).
    engine: str = "fast"
    #: The named scenario every cell ran under (a scenario label from
    #: :class:`repro.scenarios.ScenarioRef`), or None for the implicit
    #: paper workload — kept None there so pre-scenario-axis artifacts
    #: stay byte-identical.
    scenario: Optional[str] = None

    def budget(self, phi_max: float) -> SweepResult:
        """The sweep for one Φmax budget (exact value, in seconds)."""
        key = float(phi_max)
        if key not in self.budgets:
            raise ConfigurationError(
                f"no Phi_max {phi_max!r} in this grid; have "
                f"{sorted(self.budgets)}"
            )
        return self.budgets[key]

    @property
    def n_replicates(self) -> int:
        """Replicates per cell (uniform across budgets)."""
        for sweep in self.budgets.values():
            return sweep.n_replicates
        return 0

    def series(self, metric: str) -> Dict[float, Dict[str, List[float]]]:
        """One metric across the whole grid: {Φmax: {mechanism: [...]}}."""
        return {
            phi_max: self.budgets[phi_max].series(metric)
            for phi_max in self.phi_maxes
        }

    def __iter__(self) -> Iterator[Tuple[float, SweepResult]]:
        """Iterate ``(phi_max, sweep)`` pairs in the requested order."""
        return iter((phi_max, self.budgets[phi_max]) for phi_max in self.phi_maxes)

    def __len__(self) -> int:
        """Number of Φmax budgets in the grid."""
        return len(self.phi_maxes)

    def cell_rows(self) -> List[Dict[str, object]]:
        """One flat record per (Φmax, ζtarget, mechanism) cell.

        The tabular view behind :meth:`to_json` and :meth:`to_csv`
        (column order: :data:`GRID_EXPORT_COLUMNS`).  CI bounds are
        None when not finite (single-replicate cells); predictions are
        None for mechanisms without a closed form.
        """
        rows: List[Dict[str, object]] = []
        for phi_max, sweep in self:
            for mechanism, column in sweep.points.items():
                for point in column:
                    row: Dict[str, object] = {}
                    if self.scenario is not None:
                        row["scenario"] = self.scenario
                    row.update({
                        "engine": self.engine,
                        "phi_max": phi_max,
                        "zeta_target": point.zeta_target,
                        "mechanism": mechanism,
                        "n_replicates": point.n_replicates,
                    })
                    for metric in ("zeta", "phi", "rho"):
                        interval = point.interval(metric)
                        row[metric] = _finite_or_none(interval.mean)
                        row[f"{metric}_low"] = _finite_or_none(interval.low)
                        row[f"{metric}_high"] = _finite_or_none(interval.high)
                    for metric in ("zeta", "phi", "rho"):
                        predicted = (
                            getattr(point.predicted, metric)
                            if point.predicted is not None
                            else None
                        )
                        row[f"predicted_{metric}"] = _finite_or_none(predicted)
                    rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, object]:
        """The grid as a JSON-clean document (plain lists/dicts/None).

        Top level: ``engine``, ``phi_maxes``, ``zeta_targets``,
        ``n_replicates``, and ``cells`` (the :meth:`cell_rows` records),
        plus ``scenario`` when the grid ran under a named scenario (the
        key is absent otherwise, keeping pre-scenario-axis artifacts
        byte-identical).  Shared by :meth:`to_json` and
        :meth:`repro.experiments.spec.StudyResult.to_dict`.
        """
        document: Dict[str, object] = {"engine": self.engine}
        if self.scenario is not None:
            document["scenario"] = self.scenario
        document.update({
            "phi_maxes": list(self.phi_maxes),
            "zeta_targets": list(self.zeta_targets),
            "n_replicates": self.n_replicates,
            "cells": self.cell_rows(),
        })
        return document

    def to_json(self, *, indent: int = 2) -> str:
        """The grid as a strict-JSON document (benches stop hand-rolling)."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """The grid as CSV text, one row per cell.

        Columns: :data:`GRID_EXPORT_COLUMNS`, prefixed with a
        ``scenario`` column when the grid ran under a named scenario;
        empty cells stand for None (non-finite CI bounds, missing
        predictions).
        """
        columns = GRID_EXPORT_COLUMNS
        if self.scenario is not None:
            columns = ("scenario",) + GRID_EXPORT_COLUMNS
        return format_csv(
            columns,
            [
                [row[column] for column in columns]
                for row in self.cell_rows()
            ],
        )


def _resolve_seeds(
    base_seed: int,
    n_replicates: int,
    replicate_seeds: Optional[Sequence[int]],
) -> List[int]:
    """The per-replicate scenario seeds for a sweep."""
    if replicate_seeds is not None:
        seeds = [int(seed) for seed in replicate_seeds]
        if not seeds:
            raise ConfigurationError("replicate_seeds must be non-empty")
        if n_replicates not in (1, len(seeds)):
            raise ConfigurationError(
                f"n_replicates={n_replicates} conflicts with "
                f"{len(seeds)} explicit replicate_seeds"
            )
        return seeds
    if n_replicates < 1:
        raise ConfigurationError(f"n_replicates must be >= 1, got {n_replicates}")
    return [replicate_seed(base_seed, r) for r in range(n_replicates)]


def _stream_results(
    executor: Optional[Executor],
    specs: Sequence[RunSpec],
    progress: Optional[ProgressCallback],
) -> List[RunResult]:
    """Execute *specs*, reassembling by shard index (contract rule 3).

    Uses the executor's streaming ``imap`` when it has one — *progress*
    then fires per shard as it completes — and falls back to the
    blocking ``map`` for executors that only implement the protocol's
    minimum (progress then fires after the barrier, still per shard).
    """
    executor = executor if executor is not None else SerialExecutor()
    results: List[Optional[RunResult]] = [None] * len(specs)
    completed = 0
    imap = getattr(executor, "imap", None)
    if imap is not None:
        pairs = imap(execute_run_spec, specs)
    else:
        pairs = enumerate(executor.map(execute_run_spec, specs))
    for index, result in pairs:
        results[index] = result
        completed += 1
        if progress is not None:
            progress(specs[index], result, completed, len(specs))
    return results  # type: ignore[return-value]


def _predictions_for(
    base: Scenario,
    names: Sequence[str],
    zeta_targets: Sequence[float],
) -> Dict[str, List[AnalysisPoint]]:
    """Closed-form predictions for the mechanisms that have them."""
    known = [name for name in names if name in ("SNIP-AT", "SNIP-OPT", "SNIP-RH")]
    if not known:
        return {}
    return evaluate_schedulers(
        base.profile,
        base.model,
        zeta_targets=zeta_targets,
        phi_max=base.phi_max,
        mechanisms=known,
    )


def _assemble_sweep(
    names: Sequence[str],
    zeta_targets: Sequence[float],
    n_seeds: int,
    results: Sequence[RunResult],
    predictions: Mapping[str, List[AnalysisPoint]],
) -> SweepResult:
    """Fold one budget's index-ordered results into a :class:`SweepResult`."""
    points: Dict[str, List[SweepPoint]] = {name: [] for name in names}
    cursor = 0
    for target_index, target in enumerate(zeta_targets):
        for name in names:
            replicates = list(results[cursor : cursor + n_seeds])
            cursor += n_seeds
            predicted = (
                predictions[name][target_index] if name in predictions else None
            )
            points[name].append(
                SweepPoint(
                    mechanism=name,
                    zeta_target=target,
                    simulated=replicates[0],
                    predicted=predicted,
                    replicates=replicates,
                )
            )
    return SweepResult(points=points, zeta_targets=zeta_targets)


def sweep_grid(
    base: Scenario,
    zeta_targets: Sequence[float],
    phi_maxes: Sequence[float],
    *,
    factories: Optional[Mapping[str, SchedulerFactory]] = None,
    with_predictions: bool = True,
    n_replicates: int = 1,
    replicate_seeds: Optional[Sequence[int]] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    engine: str = "fast",
    transport: Optional[str] = None,
    transport_options: Optional[Mapping[str, object]] = None,
    jobs: int = 1,
) -> GridResult:
    """Run the full mechanism × ζtarget × Φmax × replicate paper grid.

    All four axes are flattened up front into pure
    :class:`~repro.experiments.runner.RunSpec` shards (Φmax outermost,
    then ζtarget, mechanism, replicate) on the seeding contract of
    :mod:`repro.experiments.parallel`: every (mechanism, ζtarget, Φmax)
    cell of replicate *r* shares ``replicate_seed(base.seed, r)``, so
    mechanisms *and budgets* are compared on identical contact
    processes, and the assembled grid is byte-identical for any worker
    count or execution order.

    Args:
        base: the scenario template; its seed anchors replicate 0 and
            its own ``phi_max`` is ignored in favour of *phi_maxes*.
        zeta_targets: the ζtarget sweep values.
        phi_maxes: the Φmax budgets, in seconds (the paper uses
            ``Tepoch/1000`` and ``Tepoch/100``).  Must be distinct.
        factories: mechanism name → scheduler factory (default: the
            paper's three registry mechanisms).  Custom factories are
            carried inside each shard; prefer registry-named factories
            (:mod:`repro.experiments.registry`) — unpicklable closures
            degrade execution to serial with a
            :class:`~repro.experiments.parallel.ParallelFallbackWarning`.
        with_predictions: pair each simulated point with its closed-form
            prediction where one exists (computed per budget).
        n_replicates: seed replicates per cell (replicate 0 is
            ``base.seed`` itself).
        replicate_seeds: explicit per-replicate seeds overriding the
            derivation.
        progress: optional streaming observer; see
            :data:`ProgressCallback`.
        executor: shard mapper; default
            :class:`~repro.experiments.parallel.SerialExecutor`.  An
            explicit executor wins over *transport*.
        transport: execution backend by transport-registry name
            (``"serial"``, ``"pool"``, ``"file-queue"``, ...); resolved
            with *jobs* and *transport_options* by
            :func:`~repro.experiments.spec.run_study` exactly like a
            study file's execution section.  Default: derived from
            *jobs* (``"pool"`` above 1, else ``"serial"``).
        transport_options: strict per-transport options dict (e.g. the
            file queue's ``queue_dir``); unknown keys fail fast.
        jobs: worker processes when resolving by name (ignored when
            *executor* is given).
        engine: simulation backend for every cell, an engine-registry
            name (``"fast"`` — the default and the historical,
            byte-identical behaviour — or ``"micro"``; see
            :mod:`repro.experiments.engine`).  The name rides each
            :class:`~repro.experiments.runner.RunSpec` across process
            boundaries; unknown names fail fast here, before any shard
            runs.  For a paired two-engine comparison use
            :func:`repro.experiments.agreement.agreement_grid`.

    Returns:
        A :class:`GridResult` holding one :class:`SweepResult` per
        budget, in *phi_maxes* order.
    """
    # Thin builder over the declarative study layer: describe the grid
    # as a StudySpec (every axis is data; custom factories ride as the
    # documented in-process escape hatch) and run it through the single
    # orchestration path.  `base` overrides the spec-derived scenario so
    # arbitrary Scenario templates keep working byte-identically.
    from .spec import StudySpec, run_study

    resolve_engine(engine)  # unknown engines fail fast, parent-side
    factories = dict(factories) if factories is not None else None
    names = tuple(factories) if factories is not None else tuple(default_factories())
    spec = StudySpec(
        name="sweep-grid",
        zeta_targets=tuple(zeta_targets),
        phi_maxes=tuple(phi_maxes),
        epochs=base.epochs,
        seed=base.seed,
        mechanisms=names,
        engines=(engine,),
        replicates=n_replicates,
        replicate_seeds=(
            tuple(replicate_seeds) if replicate_seeds is not None else None
        ),
        jobs=jobs,
        transport=transport,
        transport_options=dict(transport_options or {}),
        with_predictions=with_predictions,
    )
    study = run_study(
        spec, base=base, executor=executor, progress=progress, factories=factories
    )
    return study.grid(engine)


def sweep_zeta_targets(
    base: Scenario,
    zeta_targets: Sequence[float],
    *,
    factories: Optional[Mapping[str, SchedulerFactory]] = None,
    with_predictions: bool = True,
    n_replicates: int = 1,
    replicate_seeds: Optional[Sequence[int]] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    engine: str = "fast",
    transport: Optional[str] = None,
    transport_options: Optional[Mapping[str, object]] = None,
    jobs: int = 1,
) -> SweepResult:
    """Run the mechanism x ζtarget grid at the scenario's own Φmax.

    The single-budget slice of :func:`sweep_grid` (which see for the
    argument semantics and the sharding/seeding contract): exactly
    ``sweep_grid(base, zeta_targets, [base.phi_max], ...)`` followed by
    selecting that budget, so the historical API and the full paper
    grid exercise one sharded code path.
    """
    grid = sweep_grid(
        base,
        zeta_targets,
        [base.phi_max],
        factories=factories,
        with_predictions=with_predictions,
        n_replicates=n_replicates,
        replicate_seeds=replicate_seeds,
        executor=executor,
        progress=progress,
        engine=engine,
        transport=transport,
        transport_options=transport_options,
        jobs=jobs,
    )
    return grid.budget(base.phi_max)
