"""Command-line interface: run the paper's experiments from a shell.

Examples::

    repro-snip analyze --budget-divisor 1000
    repro-snip simulate --budget-divisor 100 --epochs 14 --seed 3
    repro-snip grid --budget-divisors 1000 100 --jobs 4 --replicates 3
    repro-snip agree --jobs 4 --replicates 3 --epochs 1
    repro-snip network --jobs 2 --factory SNIP-RH --engine fast
    repro-snip gain

(Equivalently ``python -m repro <subcommand>``.)  ``grid`` runs the
paper's complete mechanism × ζtarget × Φmax evaluation (Figs. 5–8 in
one sweep), streaming a progress line per completed cell before
printing the per-budget tables; ``agree`` runs the replicated
micro-vs-fast engine agreement grid (shared per-cell seeds, per-cell
delta confidence intervals) through the same machinery.  Both accept
``--jobs N`` to shard over a process pool — they report whether the
pool path was actually taken (a serial fallback also emits a
:class:`~repro.experiments.parallel.ParallelFallbackWarning` to
stderr) — and ``--out PATH`` to write the result as ``.json`` or
``.csv``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..core.analysis import evaluate_schedulers, rush_hour_gain_surface
from ..units import DAY
from .agreement import AGREEMENT_METRICS, agreement_grid
from .engine import PAPER_ENGINES
from .parallel import ParallelExecutor
from .registry import node_factories
from .reporting import format_series, format_table
from .scenario import PAPER_ZETA_TARGETS, paper_roadside_scenario
from .sweep import sweep_grid, sweep_zeta_targets


def _executor_from_jobs(jobs: int):
    """None for in-process execution, a ParallelExecutor above 1 job.

    The pool batches shards adaptively (``batch_size="auto"``): CLI
    grids are often many tiny cells, where per-task pickling would
    otherwise dominate.  Batching never changes results — reassembly
    stays by shard index.
    """
    if jobs <= 1:
        return None
    return ParallelExecutor(jobs=jobs, batch_size="auto")


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (--jobs, --replicates)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _write_output(path: str, result) -> None:
    """Write *result* (anything with to_json/to_csv) to *path*.

    The extension picks the format: ``.json`` serializes with
    ``to_json()``, anything else with ``to_csv()``.
    """
    text = result.to_json() if path.endswith(".json") else result.to_csv()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {path}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-divisor",
        type=float,
        default=1000.0,
        help="Phi_max = Tepoch / divisor (paper: 1000 or 100)",
    )
    parser.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=list(PAPER_ZETA_TARGETS),
        help="zeta_target sweep values in seconds",
    )


def build_parser() -> argparse.ArgumentParser:
    """The `repro-snip` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-snip",
        description=(
            "Reproduce the evaluation of 'Exploiting Rush Hours for "
            "Energy-Efficient Contact Probing in Opportunistic Data "
            "Collection' (ICDCSW 2011)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="closed-form results (Figs. 5/6)"
    )
    _add_common(analyze)

    simulate = sub.add_parser(
        "simulate", help="fast-simulator results (Figs. 7/8)"
    )
    _add_common(simulate)
    simulate.add_argument("--epochs", type=int, default=14, help="days to simulate")
    simulate.add_argument("--seed", type=int, default=1, help="RNG seed")
    simulate.add_argument(
        "--replicates", type=_positive_int, default=1,
        help="seed replicates per grid cell (adds 95%% CIs above 1)",
    )
    simulate.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = in-process)",
    )

    grid = sub.add_parser(
        "grid",
        help="the full mechanism x zeta_target x Phi_max grid (Figs. 5-8)",
    )
    grid.add_argument(
        "--budget-divisors",
        type=float,
        nargs="+",
        default=[1000.0, 100.0],
        help="Phi_max = Tepoch / divisor, one per budget (paper: 1000 100)",
    )
    grid.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=list(PAPER_ZETA_TARGETS),
        help="zeta_target sweep values in seconds",
    )
    grid.add_argument("--epochs", type=int, default=14, help="days to simulate")
    grid.add_argument("--seed", type=int, default=1, help="RNG seed")
    grid.add_argument(
        "--replicates", type=_positive_int, default=1,
        help="seed replicates per grid cell (adds 95%% CIs above 1)",
    )
    grid.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = in-process)",
    )
    grid.add_argument(
        "--no-progress", action="store_true",
        help="suppress the streaming per-cell progress lines",
    )
    grid.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the grid to PATH (.json or .csv by extension)",
    )

    agree = sub.add_parser(
        "agree",
        help="replicated micro-vs-fast engine agreement grid",
    )
    agree.add_argument(
        "--budget-divisors",
        type=float,
        nargs="+",
        default=[1000.0, 100.0],
        help="Phi_max = Tepoch / divisor, one per budget (paper: 1000 100)",
    )
    agree.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=[16.0, 24.0],
        help="zeta_target sweep values in seconds (keep the grid small: "
             "half the cells run the cycle-accurate engine)",
    )
    agree.add_argument(
        "--epochs", type=_positive_int, default=1,
        help="days per run (micro is ~100x slower; keep the horizon short)",
    )
    agree.add_argument("--seed", type=int, default=1, help="RNG seed")
    agree.add_argument(
        "--replicates", type=_positive_int, default=2,
        help="paired seed replicates per cell (>= 2 gives finite delta CIs)",
    )
    agree.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = in-process)",
    )
    agree.add_argument(
        "--engines", nargs=2, default=list(PAPER_ENGINES),
        metavar=("BASELINE", "CANDIDATE"),
        help="engine-registry names to compare (default: fast micro)",
    )
    agree.add_argument(
        "--no-progress", action="store_true",
        help="suppress the streaming per-cell progress lines",
    )
    agree.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the agreement grid to PATH (.json or .csv by extension)",
    )

    sub.add_parser("gain", help="the Fig. 4 rush-hour gain surface")

    lifetime = sub.add_parser(
        "lifetime", help="battery lifetime implied by probing budgets"
    )
    lifetime.add_argument(
        "--capacity-mah", type=float, default=2500.0,
        help="battery capacity in mAh",
    )
    lifetime.add_argument(
        "--divisors", type=float, nargs="+",
        default=[10000.0, 1000.0, 100.0, 10.0],
        help="Phi_max divisors to tabulate (Phi_max = Tepoch/divisor)",
    )

    network = sub.add_parser(
        "network", help="fleet demo: emergent rush hours from commuters"
    )
    network.add_argument("--nodes", type=int, default=3, help="sensor sites")
    network.add_argument("--commuters", type=int, default=60, help="agents")
    network.add_argument("--days", type=int, default=7, help="days simulated")
    network.add_argument("--seed", type=int, default=1, help="RNG seed")
    network.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for per-node fan-out (1 = in-process)",
    )
    network.add_argument(
        "--factory", default="SNIP-RH", choices=node_factories.names(),
        help="registry-named per-node scheduler factory",
    )
    network.add_argument(
        "--engine", default="fast", choices=list(PAPER_ENGINES),
        help="registry-named per-node simulation engine",
    )
    return parser


def cmd_analyze(args: argparse.Namespace) -> int:
    """Print the closed-form Fig. 5/6 series for the requested budget."""
    scenario = paper_roadside_scenario(phi_max_divisor=args.budget_divisor)
    results = evaluate_schedulers(
        scenario.profile,
        scenario.model,
        zeta_targets=args.targets,
        phi_max=scenario.phi_max,
    )
    for metric, label in (("zeta", "zeta (s)"), ("phi", "Phi (s)"), ("rho", "rho")):
        series = {
            name: [getattr(point, metric) for point in points]
            for name, points in results.items()
        }
        print(
            format_series(
                "zeta_target",
                args.targets,
                series,
                title=f"Analysis {label}, Phi_max = Tepoch/{args.budget_divisor:g}",
            )
        )
        print()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the fast simulator over the grid and print Fig. 7/8 series."""
    scenario = paper_roadside_scenario(
        phi_max_divisor=args.budget_divisor, epochs=args.epochs, seed=args.seed
    )
    sweep = sweep_zeta_targets(
        scenario,
        args.targets,
        n_replicates=args.replicates,
        executor=_executor_from_jobs(args.jobs),
    )
    _print_budget_tables(args, args.budget_divisor, sweep)
    return 0


def _print_budget_tables(args: argparse.Namespace, divisor: float, sweep) -> None:
    """Print one budget's three metric tables (plus CIs if replicated)."""
    replicated = sweep.n_replicates > 1
    suffix = f" x {sweep.n_replicates} seeds" if replicated else ""
    for metric, label in (("zeta", "zeta (s)"), ("phi", "Phi (s)"), ("rho", "rho")):
        print(
            format_series(
                "zeta_target",
                args.targets,
                sweep.series(metric),
                title=(
                    f"Simulation {label}, Phi_max = Tepoch/"
                    f"{divisor:g}, {args.epochs} epochs{suffix}"
                ),
            )
        )
        print()
        if replicated:
            intervals = sweep.ci_series(metric)
            rows = [
                [target] + [str(intervals[name][index]) for name in intervals]
                for index, target in enumerate(args.targets)
            ]
            print(
                format_table(
                    ["zeta_target"] + list(intervals),
                    rows,
                    title=(
                        f"{label} 95% confidence intervals, "
                        f"Phi_max = Tepoch/{divisor:g}"
                    ),
                )
            )
            print()


def cmd_grid(args: argparse.Namespace) -> int:
    """Run the full paper grid, streaming cells, then print per-budget tables."""
    scenario = paper_roadside_scenario(
        phi_max_divisor=args.budget_divisors[0], epochs=args.epochs, seed=args.seed
    )
    phi_maxes = [DAY / divisor for divisor in args.budget_divisors]
    executor = _executor_from_jobs(args.jobs)

    def report_cell(spec, result, completed, total) -> None:
        """Streaming progress: one line per finished grid cell."""
        if args.no_progress:
            return
        divisor = DAY / spec.scenario.phi_max
        width = len(str(total))
        print(
            f"[{completed:>{width}}/{total}] Phi_max=Tepoch/{divisor:g} "
            f"zeta_target={spec.scenario.zeta_target:g} {spec.mechanism} "
            f"replicate {spec.replicate}: zeta={result.mean_zeta:.2f} "
            f"Phi={result.mean_phi:.2f}",
            flush=True,
        )

    grid = sweep_grid(
        scenario,
        args.targets,
        phi_maxes,
        n_replicates=args.replicates,
        executor=executor,
        progress=report_cell,
    )
    if not args.no_progress:
        print()
    for divisor, phi_max in zip(args.budget_divisors, phi_maxes):
        _print_budget_tables(args, divisor, grid.budget(phi_max))
    if args.out:
        _write_output(args.out, grid)
    if executor is not None:
        used = "yes" if executor.last_map_parallel else "no"
        print(f"grid fan-out: {args.jobs} jobs, pool used: {used}")
    return 0


def cmd_agree(args: argparse.Namespace) -> int:
    """Run the replicated two-engine agreement grid and print deltas.

    The headline validation of the fast engine: every cell runs both
    engines on the same replicate seeds (identical contact traces), and
    the per-cell candidate−baseline deltas are reported with Student-t
    confidence intervals.
    """
    scenario = paper_roadside_scenario(
        phi_max_divisor=args.budget_divisors[0], epochs=args.epochs,
        seed=args.seed,
    )
    phi_maxes = [DAY / divisor for divisor in args.budget_divisors]
    executor = _executor_from_jobs(args.jobs)
    baseline, candidate = args.engines

    def report_cell(spec, result, completed, total) -> None:
        """Streaming progress: one line per finished engine run."""
        if args.no_progress:
            return
        divisor = DAY / spec.scenario.phi_max
        width = len(str(total))
        print(
            f"[{completed:>{width}}/{total}] {spec.engine:<5} "
            f"Phi_max=Tepoch/{divisor:g} "
            f"zeta_target={spec.scenario.zeta_target:g} {spec.mechanism} "
            f"replicate {spec.replicate}: zeta={result.mean_zeta:.2f} "
            f"Phi={result.mean_phi:.2f}",
            flush=True,
        )

    agreement = agreement_grid(
        scenario,
        args.targets,
        phi_maxes,
        engines=(baseline, candidate),
        n_replicates=args.replicates,
        executor=executor,
        progress=report_cell,
    )
    if not args.no_progress:
        print()
    headers = [
        "zeta_target", "mechanism",
        f"zeta[{baseline}]", f"zeta[{candidate}]", "d_zeta",
        f"Phi[{baseline}]", f"Phi[{candidate}]", "d_Phi",
        "d_probed/epoch",
    ]
    for divisor, phi_max in zip(args.budget_divisors, phi_maxes):
        rows = [
            [
                point.zeta_target,
                point.mechanism,
                point.engine_mean("baseline", "mean_zeta"),
                point.engine_mean("candidate", "mean_zeta"),
                str(point.delta("mean_zeta")),
                point.engine_mean("baseline", "mean_phi"),
                point.engine_mean("candidate", "mean_phi"),
                str(point.delta("mean_phi")),
                str(point.delta("probed_per_epoch")),
            ]
            for point in agreement.budget(phi_max)
        ]
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Engine agreement ({candidate} - {baseline}), "
                    f"Phi_max = Tepoch/{divisor:g}, {args.epochs} epoch(s) "
                    f"x {agreement.n_replicates} paired seeds"
                ),
            )
        )
        print()
    summary = ", ".join(
        f"{metric}={agreement.max_abs_delta(metric):.3f}"
        for metric in AGREEMENT_METRICS
    )
    print(f"max |mean delta| across cells: {summary}")
    if args.out:
        _write_output(args.out, agreement)
    if executor is not None:
        used = "yes" if executor.last_map_parallel else "no"
        print(f"agreement fan-out: {args.jobs} jobs, pool used: {used}")
    return 0


def cmd_gain(_args: argparse.Namespace) -> int:
    """Print the Fig. 4 rush-hour gain surface."""
    fractions = [x / 100.0 for x in range(5, 51, 5)]
    ratios = [float(r) for r in range(2, 21, 2)]
    surface = rush_hour_gain_surface(fractions, ratios)
    rows = [
        [f"{ratio:g}"] + row
        for ratio, row in zip(ratios, surface)
    ]
    headers = ["frh/fother"] + [f"{fraction:.2f}" for fraction in fractions]
    print(
        format_table(
            headers,
            rows,
            title="Phi_AT / Phi_rh over (Trh/Tepoch columns, rate-ratio rows)",
        )
    )
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    """Tabulate node lifetime for a set of probing budgets."""
    from ..radio.lifetime import Battery, LifetimeModel
    from ..units import DAY

    model = LifetimeModel(battery=Battery(capacity_mah=args.capacity_mah))
    rows = []
    for divisor in args.divisors:
        phi_max = DAY / divisor
        rows.append(
            [
                f"Tepoch/{divisor:g}",
                phi_max,
                model.lifetime_days(phi_max),
                model.lifetime_years(phi_max),
            ]
        )
    print(
        format_table(
            ["budget", "Phi_max (s/day)", "lifetime (days)", "lifetime (years)"],
            rows,
            title=f"Node lifetime vs probing budget ({args.capacity_mah:g} mAh)",
        )
    )
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Run the emergent-rush-hour fleet demo and print per-node results.

    The per-node scheduler comes from the named factory registry
    (``--factory``), so ``--jobs N`` fans nodes out over a real process
    pool — the factory crosses the boundary as a name, not a closure.
    """
    from ..network.agents import CommutePattern, Population
    from ..network.contacts import ContactExtractor
    from ..network.deployment import RoadDeployment
    from ..network.runner import NetworkRunner

    road = 2000.0 * (args.nodes + 1)
    deployment = RoadDeployment.evenly_spaced(args.nodes, road)
    population = Population(
        args.commuters, road, seed=args.seed,
        pattern=CommutePattern(workdays_per_week=7),
    )
    trips = population.trips(days=args.days, epoch_length=DAY)
    report = ContactExtractor(deployment).extract(trips)
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=16.0,
        epochs=args.days, seed=args.seed,
    )
    executor = _executor_from_jobs(args.jobs)
    network = NetworkRunner(
        scenario,
        report.contacts_by_node,
        args.factory,
        engine=args.engine,
    ).run(executor=executor)
    rows = [
        [node_id, len(report.contacts_by_node[node_id]),
         outcome.zeta, outcome.phi, outcome.delivery_ratio]
        for node_id, outcome in sorted(network.outcomes.items())
    ]
    print(
        format_table(
            ["node", "contacts", "zeta (s)", "Phi (s)", "delivery"],
            rows,
            title=(
                f"{args.factory} fleet: {args.commuters} commuters, "
                f"{args.nodes} nodes, {args.days} days"
            ),
        )
    )
    print(f"fleet rho: {network.fleet_rho:.2f}  "
          f"mean delivery: {network.mean_delivery_ratio:.2%}")
    if executor is not None:
        used = "yes" if executor.last_map_parallel else "no"
        print(f"per-node fan-out: {args.jobs} jobs, pool used: {used}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-snip`` console script."""
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": cmd_analyze,
        "simulate": cmd_simulate,
        "grid": cmd_grid,
        "agree": cmd_agree,
        "gain": cmd_gain,
        "lifetime": cmd_lifetime,
        "network": cmd_network,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
