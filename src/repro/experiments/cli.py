"""Command-line interface: run the paper's experiments from a shell.

Examples::

    repro-snip analyze --budget-divisor 1000
    repro-snip simulate --budget-divisor 100 --epochs 14 --seed 3
    repro-snip run --spec examples/paper_study.json --jobs 4 --out grid.json
    repro-snip run --spec study.json --set scenario.epochs=2 --set axes.engines=fast,micro
    repro-snip run --spec study.json --transport file-queue
    repro-snip run --spec study.json --cache /var/cellcache   # resumable
    repro-snip cache stats /var/cellcache
    repro-snip worker --queue /shared/queue   # serve file-queue tickets
    repro-snip serve --store /var/studies --port 8321   # HTTP study service
    repro-snip run --spec study.json --server http://127.0.0.1:8321
    repro-snip grid --budget-divisors 1000 100 --jobs 4 --replicates 3
    repro-snip grid --scenario diurnal --scenario-option ratio=12
    repro-snip agree --jobs 4 --replicates 3 --epochs 1 --gate 6.0
    repro-snip agree --scenario flash-crowd --epochs 1 --gate 6.0
    repro-snip network --jobs 2 --factory SNIP-RH --engine fast
    repro-snip lint src tests --format github
    repro-snip gain

(Equivalently ``python -m repro <subcommand>``.)  The CLI is a thin
shell over the declarative study layer
(:mod:`repro.experiments.spec`): ``run`` executes a serializable
:class:`~repro.experiments.spec.StudySpec` file — with dotted-path
``--set section.key=value`` overrides — and the legacy ``grid`` /
``agree`` / ``network`` subcommands are **spec constructors**: they
build the equivalent spec from their flags and hand it to
:func:`~repro.experiments.spec.run_study` (pass ``--emit-spec PATH`` to
write that spec out instead of running it, turning any legacy
invocation into a shareable study file).  All of them accept ``--jobs
N`` to shard over a process pool and ``--transport NAME`` to pick any
registered execution backend (``serial``, ``pool``, ``file-queue``;
:mod:`repro.experiments.transport`) — they report whether the
distributed path was actually taken (a serial fallback also emits a
:class:`~repro.experiments.parallel.ParallelFallbackWarning` to
stderr naming the study) — and ``--out PATH`` to write the result as
``.json`` or ``.csv``.  ``worker`` serves a file-queue directory from
this or any other host.  ``agree``/``run`` accept ``--gate TOL``, the
CI agreement gate: exit non-zero when any paired per-cell delta CI
excludes zero beyond the tolerance.

``run --cache DIR`` (shorthand for ``--set execution.cache=DIR``)
reuses cell outcomes from a content-addressed cache directory
(:mod:`repro.cache`) and writes new ones back, so a crashed, cancelled,
or edited study resumes by recomputing only the missing cells; the
``cache`` subcommand inspects (``stats``), evicts (``gc``), and
re-validates (``verify``) such a directory.

``serve`` runs the HTTP study service (:mod:`repro.service`): specs
are submitted as JSON over ``POST /studies``, progress streams as
server-sent events, and results persist in a content-addressed store
directory.  ``run --server URL`` submits the (post-``--set``) spec to
such a server instead of executing locally, streams the same per-cell
progress lines, and fetches the byte-identical artifact for ``--out``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from ..analysis.findings import LINT_FORMATS
from ..core.analysis import evaluate_schedulers, rush_hour_gain_surface
from ..errors import ConfigurationError, ReproError
from ..scenarios import available_scenarios
from ..units import DAY
from .agreement import AGREEMENT_METRICS, AgreementResult
from .engine import PAPER_ENGINES, available_engines
from .registry import node_factories
from .reporting import (
    format_estimate,
    format_series,
    format_table,
    write_artifact,
)
from .scenario import PAPER_ZETA_TARGETS, paper_roadside_scenario
from .spec import NetworkSection, StudySpec, run_study
from .sweep import sweep_zeta_targets


def _study_transport(spec: StudySpec):
    """The executor a spec's execution section names (None = in-process).

    Thin alias over :meth:`~repro.experiments.spec.StudySpec.build_transport`
    (the single derivation `run_study` itself uses); the CLI only needs
    the instance back for :func:`_report_pool`, and None — the plain
    serial derivation — is its signal to stay quiet.
    """
    return spec.build_transport()


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (--jobs, --replicates)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _override(text: str) -> Tuple[str, object]:
    """argparse type for ``--set path=value`` dotted-path overrides.

    The value is parsed as JSON when possible (numbers, lists, null,
    booleans); anything unparsable stays a bare string, so
    ``--set axes.engines=fast,micro`` and
    ``--set 'scenario.zeta_targets=[16, 24]'`` both work.
    """
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected path=value, got {text!r}"
        )
    path, raw = text.split("=", 1)
    try:
        value: object = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return path.strip(), value


def _write_output(path: str, result) -> None:
    """Write *result* (anything with to_json/to_csv) to *path*."""
    write_artifact(path, result)
    print(f"wrote {path}")


def _emit_spec(spec: StudySpec, path: str) -> int:
    """Write the constructed spec to *path* instead of running it."""
    spec.save(path)
    print(f"wrote spec {path}")
    return 0


def _cell_progress(*, show_engine: bool, show_scenario: bool = False):
    """A streaming per-cell progress printer for grid/agreement studies."""

    def report_cell(spec, result, completed, total) -> None:
        divisor = DAY / spec.scenario.phi_max
        width = len(str(total))
        scenario = ""
        if show_scenario and spec.scenario_ref is not None:
            scenario = f"{spec.scenario_ref.name} "
        engine = f"{spec.engine:<5} " if show_engine else ""
        cached = " (cached)" if getattr(result, "from_cache", False) else ""
        print(
            f"[{completed:>{width}}/{total}] {scenario}{engine}"
            f"Phi_max=Tepoch/{divisor:g} "
            f"zeta_target={spec.scenario.zeta_target:g} {spec.mechanism} "
            f"replicate {spec.replicate}: zeta={result.mean_zeta:.2f} "
            f"Phi={result.mean_phi:.2f}{cached}",
            flush=True,
        )

    return report_cell


def _node_progress():
    """A streaming per-node progress printer for network studies."""

    def report_node(node_id, result, completed, total) -> None:
        width = len(str(total))
        print(
            f"[{completed:>{width}}/{total}] node {node_id}: "
            f"zeta={result.mean_zeta:.2f} Phi={result.mean_phi:.2f}",
            flush=True,
        )

    return report_node


def _report_pool(label: str, jobs: int, executor) -> None:
    """The transport diagnostic line (asserted by the CI smokes).

    ``pool used`` means the distributed path was actually taken — for
    the pool transport that the shards ran on worker processes, for the
    file queue that at least one ticket was completed by another
    process (a spawned or external worker).
    """
    if executor is not None:
        used = "yes" if getattr(executor, "last_map_parallel", False) else "no"
        name = getattr(executor, "transport_name", type(executor).__name__)
        print(
            f"{label} fan-out: {jobs} jobs via {name!r} transport, "
            f"pool used: {used}"
        )


def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    """The ``--scenario`` / ``--scenario-option`` pair (run/grid/agree)."""
    parser.add_argument(
        "--scenario", default=None, choices=available_scenarios(),
        help="registry-named workload to run the grid on "
             "(default: the spec's axes.scenarios, i.e. paper-roadside)",
    )
    parser.add_argument(
        "--scenario-option", dest="scenario_options", action="append",
        type=_override, default=[], metavar="KEY=VALUE",
        help="factory option for --scenario (repeatable), e.g. "
             "--scenario-option 'peaks=[8, 18]' "
             "--scenario-option ratio=12",
    )


def _scenario_entry(args: argparse.Namespace):
    """The ``axes.scenarios`` entry the scenario flags request, or None."""
    options = dict(args.scenario_options)
    if args.scenario is None:
        if options:
            raise ConfigurationError(
                "--scenario-option requires --scenario NAME"
            )
        return None
    if options:
        return {"name": args.scenario, "options": options}
    return args.scenario


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-divisor",
        type=float,
        default=1000.0,
        help="Phi_max = Tepoch / divisor (paper: 1000 or 100)",
    )
    parser.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=list(PAPER_ZETA_TARGETS),
        help="zeta_target sweep values in seconds",
    )


def build_parser() -> argparse.ArgumentParser:
    """The `repro-snip` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-snip",
        description=(
            "Reproduce the evaluation of 'Exploiting Rush Hours for "
            "Energy-Efficient Contact Probing in Opportunistic Data "
            "Collection' (ICDCSW 2011)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="closed-form results (Figs. 5/6)"
    )
    _add_common(analyze)

    simulate = sub.add_parser(
        "simulate", help="fast-simulator results (Figs. 7/8)"
    )
    _add_common(simulate)
    simulate.add_argument("--epochs", type=int, default=14, help="days to simulate")
    simulate.add_argument("--seed", type=int, default=1, help="RNG seed")
    simulate.add_argument(
        "--replicates", type=_positive_int, default=1,
        help="seed replicates per grid cell (adds 95%% CIs above 1)",
    )
    simulate.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = in-process)",
    )

    run = sub.add_parser(
        "run",
        help="execute a declarative StudySpec file (grid, agreement, or fleet)",
    )
    run.add_argument(
        "--spec", required=True, metavar="PATH",
        help="StudySpec JSON file to execute",
    )
    run.add_argument(
        "--set", dest="overrides", action="append", type=_override,
        default=[], metavar="PATH=VALUE",
        help="dotted-path spec override (repeatable), e.g. "
             "--set scenario.epochs=2 --set axes.engines=fast,micro",
    )
    run.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="shorthand for --set execution.jobs=N",
    )
    run.add_argument(
        "--transport", default=None, metavar="NAME",
        help="shorthand for --set execution.transport=NAME "
             "(serial, pool, file-queue, or any registered transport)",
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the StudyResult document (shorthand for "
             "--set outputs.out=PATH; .json or .csv by extension)",
    )
    run.add_argument(
        "--cache", default=None, metavar="DIR",
        help="shorthand for --set execution.cache=DIR: reuse cell "
             "outcomes from (and write new ones to) a content-addressed "
             "cache directory, making crashed or edited studies "
             "resumable (repro.cache)",
    )
    run.add_argument(
        "--server", default=None, metavar="URL",
        help="submit the (post---set) spec to a running study service "
             "(repro-snip serve) instead of executing locally; streams "
             "events and fetches the byte-identical artifact for --out",
    )
    _add_scenario_flags(run)
    run.add_argument(
        "--gate", type=float, default=None, metavar="TOL",
        help="agreement gate: exit 1 if any paired delta CI excludes "
             "zero beyond TOL (requires a study with >= 2 engines)",
    )
    run_progress = run.add_mutually_exclusive_group()
    run_progress.add_argument(
        "--no-progress", action="store_true",
        help="suppress the streaming per-cell progress lines",
    )
    run_progress.add_argument(
        "--progress", action="store_true",
        help="force streaming progress lines even for study kinds that "
             "default to quiet (per-node lines for network studies); "
             "streams through imap on any transport",
    )
    run.add_argument(
        "--emit-spec", default=None, metavar="PATH",
        help="write the effective (post---set) spec to PATH and exit",
    )

    grid = sub.add_parser(
        "grid",
        help="the full mechanism x zeta_target x Phi_max grid (Figs. 5-8)",
    )
    grid.add_argument(
        "--budget-divisors",
        type=float,
        nargs="+",
        default=[1000.0, 100.0],
        help="Phi_max = Tepoch / divisor, one per budget (paper: 1000 100)",
    )
    grid.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=list(PAPER_ZETA_TARGETS),
        help="zeta_target sweep values in seconds",
    )
    grid.add_argument("--epochs", type=int, default=14, help="days to simulate")
    grid.add_argument("--seed", type=int, default=1, help="RNG seed")
    grid.add_argument(
        "--replicates", type=_positive_int, default=1,
        help="seed replicates per grid cell (adds 95%% CIs above 1)",
    )
    grid.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = in-process)",
    )
    grid.add_argument(
        "--engine", default="fast", choices=available_engines(),
        help="engine-registry name every cell runs on (default: fast)",
    )
    _add_scenario_flags(grid)
    grid.add_argument(
        "--transport", default=None, metavar="NAME",
        help="transport-registry name the grid executes on "
             "(default: pool when --jobs > 1, else serial)",
    )
    grid.add_argument(
        "--no-progress", action="store_true",
        help="suppress the streaming per-cell progress lines",
    )
    grid.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the grid to PATH (.json or .csv by extension)",
    )
    grid.add_argument(
        "--emit-spec", default=None, metavar="PATH",
        help="write the equivalent StudySpec to PATH and exit",
    )

    agree = sub.add_parser(
        "agree",
        help="replicated micro-vs-fast engine agreement grid",
    )
    agree.add_argument(
        "--budget-divisors",
        type=float,
        nargs="+",
        default=[1000.0, 100.0],
        help="Phi_max = Tepoch / divisor, one per budget (paper: 1000 100)",
    )
    agree.add_argument(
        "--targets",
        type=float,
        nargs="+",
        default=[16.0, 24.0],
        help="zeta_target sweep values in seconds (keep the grid small: "
             "half the cells run the cycle-accurate engine)",
    )
    agree.add_argument(
        "--epochs", type=_positive_int, default=1,
        help="days per run (micro is ~100x slower; keep the horizon short)",
    )
    agree.add_argument("--seed", type=int, default=1, help="RNG seed")
    agree.add_argument(
        "--replicates", type=_positive_int, default=2,
        help="paired seed replicates per cell (>= 2 gives finite delta CIs)",
    )
    agree.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = in-process)",
    )
    agree.add_argument(
        "--engines", nargs=2, default=list(PAPER_ENGINES),
        choices=available_engines(),
        metavar=("BASELINE", "CANDIDATE"),
        help="engine-registry names to compare (default: fast micro)",
    )
    _add_scenario_flags(agree)
    agree.add_argument(
        "--transport", default=None, metavar="NAME",
        help="transport-registry name the grid executes on "
             "(default: pool when --jobs > 1, else serial)",
    )
    agree.add_argument(
        "--gate", type=float, default=None, metavar="TOL",
        help="exit 1 if any paired delta CI excludes zero beyond TOL",
    )
    agree.add_argument(
        "--no-progress", action="store_true",
        help="suppress the streaming per-cell progress lines",
    )
    agree.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the agreement grid to PATH (.json or .csv by extension)",
    )
    agree.add_argument(
        "--emit-spec", default=None, metavar="PATH",
        help="write the equivalent StudySpec to PATH and exit",
    )

    sub.add_parser("gain", help="the Fig. 4 rush-hour gain surface")

    lifetime = sub.add_parser(
        "lifetime", help="battery lifetime implied by probing budgets"
    )
    lifetime.add_argument(
        "--capacity-mah", type=float, default=2500.0,
        help="battery capacity in mAh",
    )
    lifetime.add_argument(
        "--divisors", type=float, nargs="+",
        default=[10000.0, 1000.0, 100.0, 10.0],
        help="Phi_max divisors to tabulate (Phi_max = Tepoch/divisor)",
    )

    network = sub.add_parser(
        "network", help="fleet demo: emergent rush hours from commuters"
    )
    network.add_argument("--nodes", type=int, default=3, help="sensor sites")
    network.add_argument("--commuters", type=int, default=60, help="agents")
    network.add_argument("--days", type=int, default=7, help="days simulated")
    network.add_argument("--seed", type=int, default=1, help="RNG seed")
    network.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for per-node fan-out (1 = in-process)",
    )
    network.add_argument(
        "--factory", default="SNIP-RH", choices=node_factories.names(),
        help="registry-named per-node scheduler factory",
    )
    network.add_argument(
        "--engine", default="fast",
        choices=available_engines(),
        help="registry-named per-node simulation engine",
    )
    network.add_argument(
        "--transport", default=None, metavar="NAME",
        help="transport-registry name the fleet fans out on "
             "(default: pool when --jobs > 1, else serial)",
    )
    network.add_argument(
        "--emit-spec", default=None, metavar="PATH",
        help="write the equivalent StudySpec to PATH and exit",
    )

    lint = sub.add_parser(
        "lint",
        help="static invariant checks: determinism, registry/CLI "
             "consistency, worker safety (repro.analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", dest="fmt", default="table", choices=LINT_FORMATS,
        help="findings rendering: aligned table, JSON document, or "
             "GitHub workflow annotations",
    )
    lint.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report artifact (.json or .csv by extension)",
    )
    lint.add_argument(
        "--examples", default=None, metavar="DIR",
        help="directory of StudySpec JSON documents validated by the "
             "spec-consistency rule (default: ./examples when present; "
             "--no-examples skips)",
    )
    lint.add_argument(
        "--no-examples", action="store_true",
        help="skip example-spec validation",
    )
    lint.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persist per-file findings keyed on content hash, so "
             "re-lints only re-walk changed files",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    worker = sub.add_parser(
        "worker",
        help="file-queue worker: claim and execute shard tickets from a "
             "queue directory (the serve side of transport=file-queue)",
    )
    worker.add_argument(
        "--queue", required=True, metavar="DIR",
        help="the shared queue directory (created if missing)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECS",
        help="seconds between queue scans when idle (default: 0.2)",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="SECS",
        help="exit after this many consecutive idle seconds "
             "(default: serve until stopped)",
    )
    worker.add_argument(
        "--once", action="store_true",
        help="drain the queue once and exit instead of serving forever",
    )

    serve = sub.add_parser(
        "serve",
        help="HTTP study service: accept StudySpec submissions, stream "
             "per-cell progress, persist results (repro.service)",
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="the content-addressed study store directory "
             "(created if missing; restart-safe)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8321, metavar="N",
        help="bind port (default: 8321; 0 = ephemeral)",
    )
    serve.add_argument(
        "--transport", default=None, metavar="NAME",
        help="pin every study to this transport-registry name "
             "(default: each spec's own execution section)",
    )
    serve.add_argument(
        "--transport-option", dest="transport_options", action="append",
        type=_override, default=[], metavar="KEY=VALUE",
        help="per-transport option for the pinned --transport "
             "(repeatable), e.g. --transport-option "
             "queue_dir=/shared/queue",
    )
    serve.add_argument(
        "--heartbeat", type=float, default=10.0, metavar="SECS",
        help="seconds between SSE keep-alive comments on idle event "
             "streams (default: 10)",
    )
    serve.add_argument(
        "--cache", default=None, metavar="DIR",
        help="pin every study to this cell-cache directory "
             "(overrides each spec's execution.cache; repro.cache)",
    )
    serve.add_argument(
        "--cache-option", dest="cache_options", action="append",
        type=_override, default=[], metavar="KEY=VALUE",
        help="per-cache option for the pinned --cache (repeatable): "
             "max_bytes, max_age_days, readonly",
    )

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain a cell-cache directory (repro.cache)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count and total size of a cache directory"
    )
    cache_stats.add_argument(
        "dir", metavar="DIR", help="the cell-cache directory"
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="evict entries by age and/or total size"
    )
    cache_gc.add_argument(
        "dir", metavar="DIR", help="the cell-cache directory"
    )
    cache_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="evict oldest entries until the cache fits in N bytes",
    )
    cache_gc.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="evict entries not written or reused for DAYS days",
    )
    cache_verify = cache_sub.add_parser(
        "verify",
        help="re-validate every entry's checksum; corrupt entries are "
             "discarded (their cells re-execute on the next run)",
    )
    cache_verify.add_argument(
        "dir", metavar="DIR", help="the cell-cache directory"
    )
    return parser


def cmd_analyze(args: argparse.Namespace) -> int:
    """Print the closed-form Fig. 5/6 series for the requested budget."""
    scenario = paper_roadside_scenario(phi_max_divisor=args.budget_divisor)
    results = evaluate_schedulers(
        scenario.profile,
        scenario.model,
        zeta_targets=args.targets,
        phi_max=scenario.phi_max,
    )
    for metric, label in (("zeta", "zeta (s)"), ("phi", "Phi (s)"), ("rho", "rho")):
        series = {
            name: [getattr(point, metric) for point in points]
            for name, points in results.items()
        }
        print(
            format_series(
                "zeta_target",
                args.targets,
                series,
                title=f"Analysis {label}, Phi_max = Tepoch/{args.budget_divisor:g}",
            )
        )
        print()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the fast simulator over the grid and print Fig. 7/8 series."""
    scenario = paper_roadside_scenario(
        phi_max_divisor=args.budget_divisor, epochs=args.epochs, seed=args.seed
    )
    sweep = sweep_zeta_targets(
        scenario,
        args.targets,
        n_replicates=args.replicates,
        jobs=args.jobs,
    )
    _print_budget_tables(args.targets, args.epochs, args.budget_divisor, sweep)
    return 0


def _print_budget_tables(
    targets: Sequence[float], epochs: int, divisor: float, sweep
) -> None:
    """Print one budget's three metric tables (plus CIs if replicated)."""
    replicated = sweep.n_replicates > 1
    suffix = f" x {sweep.n_replicates} seeds" if replicated else ""
    for metric, label in (("zeta", "zeta (s)"), ("phi", "Phi (s)"), ("rho", "rho")):
        print(
            format_series(
                "zeta_target",
                targets,
                sweep.series(metric),
                title=(
                    f"Simulation {label}, Phi_max = Tepoch/"
                    f"{divisor:g}, {epochs} epochs{suffix}"
                ),
            )
        )
        print()
        if replicated:
            intervals = sweep.ci_series(metric)
            rows = [
                [target]
                + [format_estimate(intervals[name][index]) for name in intervals]
                for index, target in enumerate(targets)
            ]
            print(
                format_table(
                    ["zeta_target"] + list(intervals),
                    rows,
                    title=(
                        f"{label} 95% confidence intervals, "
                        f"Phi_max = Tepoch/{divisor:g}"
                    ),
                )
            )
            print()


def _print_agreement_tables(agreement: AgreementResult, epochs: int) -> None:
    """Print one candidate engine's per-budget delta tables + summary."""
    baseline = agreement.baseline_engine
    candidate = agreement.candidate_engine
    headers = [
        "zeta_target", "mechanism",
        f"zeta[{baseline}]", f"zeta[{candidate}]", "d_zeta",
        f"Phi[{baseline}]", f"Phi[{candidate}]", "d_Phi",
        "d_probed/epoch",
    ]
    for phi_max in agreement.phi_maxes:
        divisor = DAY / phi_max
        rows = [
            [
                point.zeta_target,
                point.mechanism,
                point.engine_mean("baseline", "mean_zeta"),
                point.engine_mean("candidate", "mean_zeta"),
                format_estimate(point.delta("mean_zeta")),
                point.engine_mean("baseline", "mean_phi"),
                point.engine_mean("candidate", "mean_phi"),
                format_estimate(point.delta("mean_phi")),
                format_estimate(point.delta("probed_per_epoch")),
            ]
            for point in agreement.budget(phi_max)
        ]
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Engine agreement ({candidate} - {baseline}), "
                    f"Phi_max = Tepoch/{divisor:g}, {epochs} epoch(s) "
                    f"x {agreement.n_replicates} paired seeds"
                ),
            )
        )
        print()
    summary = ", ".join(
        f"{metric}={agreement.max_abs_delta(metric):.3f}"
        for metric in AGREEMENT_METRICS
    )
    print(f"max |mean delta| across cells: {summary}")


def _print_network_tables(spec: StudySpec, network) -> None:
    """Print the per-node fleet table and its aggregates."""
    assert spec.network is not None
    rows = [
        [node_id, len(outcome.result.trace),
         outcome.zeta, outcome.phi, outcome.delivery_ratio]
        for node_id, outcome in sorted(network.outcomes.items())
    ]
    print(
        format_table(
            ["node", "contacts", "zeta (s)", "Phi (s)", "delivery"],
            rows,
            title=(
                f"{spec.network.node_factory} fleet: "
                f"{spec.network.commuters} commuters, "
                f"{spec.network.nodes} nodes, {spec.epochs} days"
            ),
        )
    )
    print(f"fleet rho: {network.fleet_rho:.2f}  "
          f"mean delivery: {network.mean_delivery_ratio:.2%}")


def _apply_gate(agreements, tolerance: float) -> int:
    """Check every candidate engine against the agreement gate."""
    violations: List[str] = []
    for agreement in agreements:
        violations.extend(agreement.gate_violations(tolerance))
    if violations:
        for line in violations:
            print(f"GATE VIOLATION: {line}")
        print(f"agreement gate FAILED: {len(violations)} cell(s) beyond "
              f"±{tolerance:g}")
        return 1
    print(f"agreement gate passed: all delta CIs within ±{tolerance:g} of 0")
    return 0


def _print_event_line(event: dict, *, show_engine: bool) -> None:
    """Render one server-sent progress event as the local progress line.

    Mirrors :func:`_cell_progress` / :func:`_node_progress` so ``run
    --server`` output reads the same as a local run.
    """
    total = event.get("total", 0)
    width = len(str(total))
    prefix = f"[{event.get('completed', 0):>{width}}/{total}]"
    if event.get("event") == "node":
        print(
            f"{prefix} node {event['node']}: "
            f"zeta={event['mean_zeta']:.2f} Phi={event['mean_phi']:.2f}",
            flush=True,
        )
        return
    divisor = DAY / event["phi_max"]
    engine = f"{event['engine']:<5} " if show_engine else ""
    cached = " (cached)" if event.get("cached") else ""
    print(
        f"{prefix} {engine}"
        f"Phi_max=Tepoch/{divisor:g} "
        f"zeta_target={event['zeta_target']:g} {event['mechanism']} "
        f"replicate {event['replicate']}: zeta={event['mean_zeta']:.2f} "
        f"Phi={event['mean_phi']:.2f}{cached}",
        flush=True,
    )


def _run_remote(spec: StudySpec, args: argparse.Namespace) -> int:
    """The ``run --server URL`` path: submit, stream, fetch the artifact.

    The server executes the exact spec we would have run locally (the
    post-``--set`` form), so the fetched ``--out`` artifact is
    byte-identical to a local ``run --spec ... --out``.
    """
    from ..service.client import ServiceClient
    from ..service.store import TERMINAL_STATES

    client = ServiceClient(args.server)
    submitted = client.submit(spec)
    study_id = submitted["id"]
    print(f"study {spec.name!r}: {spec.total_runs} runs, "
          f"submitted as {study_id} to {args.server} "
          f"({submitted['state']})")
    show_progress = args.progress or (
        not spec.is_network and not args.no_progress
    )
    show_engine = len(spec.engines) > 1
    final = submitted["state"]
    error = submitted.get("error")
    for event in client.stream(study_id):
        kind = event.get("event")
        if kind in TERMINAL_STATES:
            final = kind
            error = event.get("error")
        elif kind in ("cell", "node") and show_progress:
            _print_event_line(event, show_engine=show_engine)
    if show_progress:
        print()
    if final != "done":
        detail = f": {error}" if error else ""
        print(f"study {study_id} {final}{detail}", file=sys.stderr)
        return 1
    if spec.out:
        fmt = "csv" if spec.out.endswith(".csv") else "json"
        text = client.result_text(study_id, fmt=fmt)
        with open(spec.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {spec.out}")
    print(f"study {study_id} done")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute a StudySpec file: the one entry point for every study."""
    spec = StudySpec.load(args.spec)
    overrides = dict(args.overrides)
    if args.jobs is not None:
        overrides["execution.jobs"] = args.jobs
    if args.transport is not None:
        overrides["execution.transport"] = args.transport
    if args.cache is not None:
        overrides["execution.cache"] = args.cache
    if args.out is not None:
        overrides["outputs.out"] = args.out
    scenario_entry = _scenario_entry(args)
    if scenario_entry is not None:
        overrides["axes.scenarios"] = [scenario_entry]
    if overrides:
        spec = spec.with_overrides(overrides)
    if args.emit_spec:
        return _emit_spec(spec, args.emit_spec)
    if args.server is not None:
        if args.gate is not None:
            print("--gate is not supported with --server: fetch the "
                  "document and gate locally", file=sys.stderr)
            return 2
        return _run_remote(spec, args)

    # `run` honours the spec's whole execution section: the transport
    # name (explicit or derived from jobs), batch size, and options all
    # resolve through the registry.
    executor = _study_transport(spec)
    if spec.is_network:
        # Fleets default to quiet; --progress opts into per-node lines.
        show_progress = args.progress
        progress = _node_progress() if show_progress else None
    else:
        show_progress = not args.no_progress
        progress = (
            _cell_progress(
                show_engine=len(spec.engines) > 1,
                show_scenario=len(spec.scenarios) > 1,
            )
            if show_progress
            else None
        )
    print(f"study {spec.name!r}: {spec.total_runs} runs, "
          f"{spec.jobs} job(s), transport {spec.resolved_transport!r}")
    study = run_study(spec, executor=executor, progress=progress)
    if show_progress:
        print()

    if spec.is_network:
        _print_network_tables(spec, study.network)
    else:
        # Multi-scenario studies key grids/agreements "engine@label";
        # iterating the result mappings covers both shapes, with a
        # scenario banner separating the per-workload tables.
        if len(spec.engines) >= 2:
            for key, agreement in study.agreements.items():
                if "@" in key:
                    print(f"scenario: {key.split('@', 1)[1]}")
                    print()
                _print_agreement_tables(agreement, spec.epochs)
                print()
        else:
            for grid in study.grids.values():
                if grid.scenario is not None:
                    print(f"scenario: {grid.scenario}")
                    print()
                for divisor, phi_max in zip(
                    spec.budget_divisors(), spec.phi_maxes
                ):
                    _print_budget_tables(
                        spec.zeta_targets, spec.epochs, divisor,
                        grid.budget(phi_max),
                    )
    if spec.out:
        _write_output(spec.out, study)
    if spec.cache is not None:
        # The greppable resume diagnostic (asserted by the CI cache
        # smoke): how much of the study came from the cell cache.
        print(f"cache: {study.cells_cached} hit(s), "
              f"{study.cells_computed} computed")
    _report_pool("study", spec.jobs, executor)
    if args.gate is not None:
        if not study.agreements:
            print("--gate requires a study listing >= 2 engines")
            return 2
        return _apply_gate(study.agreements.values(), args.gate)
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    """Run the full paper grid, streaming cells, then print per-budget tables.

    A spec constructor: the flags build a
    :class:`~repro.experiments.spec.StudySpec` (``--emit-spec`` writes
    it instead of running) executed through
    :func:`~repro.experiments.spec.run_study`.
    """
    entry = _scenario_entry(args)
    extra = {"scenarios": (entry,)} if entry is not None else {}
    spec = StudySpec(
        name="grid",
        zeta_targets=tuple(args.targets),
        phi_maxes=tuple(DAY / divisor for divisor in args.budget_divisors),
        epochs=args.epochs,
        seed=args.seed,
        engines=(args.engine,),
        replicates=args.replicates,
        jobs=args.jobs,
        transport=args.transport,
        out=args.out,
        **extra,
    )
    if args.emit_spec:
        return _emit_spec(spec, args.emit_spec)
    executor = _study_transport(spec)
    progress = None if args.no_progress else _cell_progress(show_engine=False)
    study = run_study(spec, executor=executor, progress=progress)
    grid = study.grid()
    if not args.no_progress:
        print()
    for divisor, phi_max in zip(args.budget_divisors, spec.phi_maxes):
        _print_budget_tables(
            args.targets, args.epochs, divisor, grid.budget(phi_max)
        )
    if args.out:
        _write_output(args.out, grid)
    _report_pool("grid", args.jobs, executor)
    return 0


def cmd_agree(args: argparse.Namespace) -> int:
    """Run the replicated two-engine agreement grid and print deltas.

    The headline validation of the fast engine: every cell runs both
    engines on the same replicate seeds (identical contact traces), and
    the per-cell candidate−baseline deltas are reported with Student-t
    confidence intervals.  A spec constructor, like ``grid``.
    """
    entry = _scenario_entry(args)
    extra = {"scenarios": (entry,)} if entry is not None else {}
    spec = StudySpec(
        name="agree",
        zeta_targets=tuple(args.targets),
        phi_maxes=tuple(DAY / divisor for divisor in args.budget_divisors),
        epochs=args.epochs,
        seed=args.seed,
        engines=tuple(args.engines),
        replicates=args.replicates,
        jobs=args.jobs,
        transport=args.transport,
        out=args.out,
        with_predictions=False,
        **extra,
    )
    if args.emit_spec:
        return _emit_spec(spec, args.emit_spec)
    executor = _study_transport(spec)
    progress = None if args.no_progress else _cell_progress(show_engine=True)
    study = run_study(spec, executor=executor, progress=progress)
    agreement = study.agreements[spec.engines[1]]
    if not args.no_progress:
        print()
    _print_agreement_tables(agreement, args.epochs)
    if args.out:
        _write_output(args.out, agreement)
    _report_pool("agreement", args.jobs, executor)
    if args.gate is not None:
        return _apply_gate([agreement], args.gate)
    return 0


def cmd_gain(_args: argparse.Namespace) -> int:
    """Print the Fig. 4 rush-hour gain surface."""
    fractions = [x / 100.0 for x in range(5, 51, 5)]
    ratios = [float(r) for r in range(2, 21, 2)]
    surface = rush_hour_gain_surface(fractions, ratios)
    rows = [
        [f"{ratio:g}"] + row
        for ratio, row in zip(ratios, surface)
    ]
    headers = ["frh/fother"] + [f"{fraction:.2f}" for fraction in fractions]
    print(
        format_table(
            headers,
            rows,
            title="Phi_AT / Phi_rh over (Trh/Tepoch columns, rate-ratio rows)",
        )
    )
    return 0


def cmd_lifetime(args: argparse.Namespace) -> int:
    """Tabulate node lifetime for a set of probing budgets."""
    from ..radio.lifetime import Battery, LifetimeModel

    model = LifetimeModel(battery=Battery(capacity_mah=args.capacity_mah))
    rows = []
    for divisor in args.divisors:
        phi_max = DAY / divisor
        rows.append(
            [
                f"Tepoch/{divisor:g}",
                phi_max,
                model.lifetime_days(phi_max),
                model.lifetime_years(phi_max),
            ]
        )
    print(
        format_table(
            ["budget", "Phi_max (s/day)", "lifetime (days)", "lifetime (years)"],
            rows,
            title=f"Node lifetime vs probing budget ({args.capacity_mah:g} mAh)",
        )
    )
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Run the emergent-rush-hour fleet demo and print per-node results.

    A spec constructor: the flags build a network
    :class:`~repro.experiments.spec.StudySpec` (per-node fan-out rides
    the study's executor; the registry-named ``--factory`` crosses the
    process boundary as a name, not a closure).
    """
    spec = StudySpec(
        name="network",
        zeta_targets=(16.0,),
        phi_maxes=(DAY / 100.0,),
        epochs=args.days,
        seed=args.seed,
        engines=(args.engine,),
        jobs=args.jobs,
        transport=args.transport,
        network=NetworkSection(
            nodes=args.nodes,
            commuters=args.commuters,
            node_factory=args.factory,
        ),
    )
    if args.emit_spec:
        return _emit_spec(spec, args.emit_spec)
    executor = _study_transport(spec)
    study = run_study(spec, executor=executor)
    _print_network_tables(spec, study.network)
    _report_pool("per-node", args.jobs, executor)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static invariant checker; exit 1 on any finding.

    The CI gate: ``python -m repro lint src tests --format github``
    annotates the PR diff and fails the build when a determinism,
    registry-consistency, or worker-safety invariant is violated
    (:mod:`repro.analysis`).  Exemptions need an annotated
    ``# lint: allow[rule] -- reason`` pragma at the site.
    """
    from ..analysis import all_rules, run_lint

    if args.list_rules:
        rows = [
            [rule.rule_id, rule.category, rule.description]
            for rule in all_rules()
        ]
        print(format_table(["rule", "category", "description"], rows,
                           title="repro lint rule catalogue"))
        return 0
    report = run_lint(
        args.paths,
        examples_dir="" if args.no_examples else args.examples,
        cache_path=args.cache,
    )
    if args.fmt == "json":
        print(report.to_json(), end="")
    elif args.fmt == "github":
        print(report.render_github())
    else:
        print(report.render_table())
    if args.out:
        _write_output(args.out, report)
    return 0 if report.ok else 1


def cmd_worker(args: argparse.Namespace) -> int:
    """Serve a file-queue directory: the worker half of the transport.

    Claims shard tickets (atomic rename), executes them with pool-worker
    semantics — mechanisms/engines re-resolve by registry name on this
    side — and publishes outcome pickles for the coordinator.  Exits on
    ``--once``, ``--max-idle``, or a ``stop`` file in the queue.
    """
    from .worker import worker_loop

    processed = worker_loop(
        args.queue,
        poll_interval=args.poll,
        max_idle=args.max_idle,
        once=args.once,
        handle_signals=True,
    )
    print(f"worker processed {processed} ticket(s)")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain a cell-cache directory (repro.cache).

    ``stats`` prints the entry count and byte total, ``gc`` evicts by
    age and/or size, and ``verify`` re-validates every entry's
    checksum, discarding corrupt entries so their cells re-execute on
    the next cached run.
    """
    from ..cache.store import CellCache

    cache = CellCache(args.dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache {stats['root']}: {stats['entries']} entr(ies), "
              f"{stats['total_bytes']} bytes "
              f"(schema v{stats['schema_version']})")
        return 0
    if args.cache_command == "gc":
        if args.max_bytes is None and args.max_age_days is None:
            print("cache gc needs --max-bytes and/or --max-age-days",
                  file=sys.stderr)
            return 2
        report = cache.gc(
            max_bytes=args.max_bytes, max_age_days=args.max_age_days
        )
        print(f"cache gc: removed {report['removed']} entr(ies) "
              f"({report['removed_bytes']} bytes), kept "
              f"{report['kept']} ({report['kept_bytes']} bytes)")
        return 0
    report = cache.verify()
    print(f"cache verify: {report['ok']}/{report['entries']} entr(ies) "
          f"ok, {report['corrupt_removed']} corrupt entr(ies) removed")
    return 0 if report["corrupt_removed"] == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP study service until SIGTERM/SIGINT.

    The long-running half of the serving stack
    (:mod:`repro.service`): submissions persist in the
    content-addressed ``--store`` directory, a single scheduler thread
    executes them FIFO (over the pinned ``--transport`` when given),
    and every connected client streams per-cell progress.  A restarted
    server re-lists finished studies and marks interrupted ones failed.
    """
    from ..service.app import serve

    return serve(
        args.store,
        host=args.host,
        port=args.port,
        transport=args.transport,
        transport_options=dict(args.transport_options) or None,
        heartbeat=args.heartbeat,
        cache=args.cache,
        cache_options=dict(args.cache_options) or None,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-snip`` console script."""
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": cmd_analyze,
        "simulate": cmd_simulate,
        "run": cmd_run,
        "grid": cmd_grid,
        "agree": cmd_agree,
        "gain": cmd_gain,
        "lifetime": cmd_lifetime,
        "network": cmd_network,
        "lint": cmd_lint,
        "worker": cmd_worker,
        "serve": cmd_serve,
        "cache": cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, FileNotFoundError) as exc:
        # User-input errors (a missing spec file, a bad --set path, an
        # unknown registry name) are diagnostics, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
