"""The fast contact-driven simulator.

Simulating two weeks of a duty-cycled radio cycle-by-cycle means
hundreds of thousands of events per run; the paper's quantities do not
require that.  Between contacts the radio's behaviour is statistically
determined by its duty-cycle (energy accrues at ``d`` per second), and
whether/when a contact is probed is pure arithmetic on the beacon train
(:class:`~repro.radio.beacon.BeaconSchedule`).  The fast runner
therefore advances time in CPU decision intervals (the paper's periodic
CPU wake-ups), charges energy analytically, and resolves each contact
in O(1).  The cycle-accurate :mod:`~repro.experiments.micro` engine
validates this equivalence in the test suite and in an ablation bench.

Invariants enforced here:

* epoch probing energy never exceeds Φmax — when a decision interval
  would cross the budget, probing is cut at the exact crossing time and
  later contacts in the interval are missed;
* a contact is probed only while probing is active, by a beacon of the
  train anchored at the activation instant (the train persists across
  decision intervals while the configuration is unchanged, exactly like
  a free-running radio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.schedulers.base import Scheduler
from ..mobility.contact import Contact, ContactTrace
from ..mobility.synthetic import SyntheticTraceGenerator
from ..node.buffer import DataBuffer
from ..node.sensor import ProbingAccount, SensorNode
from ..protocols.snip import SnipProbe
from ..radio.beacon import BeaconSchedule
from ..radio.duty_cycle import DutyCycleConfig
from ..radio.link import LinkModel
from ..radio.states import RadioState
from ..scenarios import ScenarioRef
from ..sim.rng import RandomStreams
from ..sim.timeline import Timeline
from ..units import TIME_EPSILON
from .engine import resolve_engine
from .metrics import EpochMetrics, RunMetrics
from .registry import PAPER_MECHANISMS, engine_factories, mechanism_factories
from .scenario import Scenario

SchedulerFactory = Callable[[Scenario], Scheduler]


def generate_trace(
    scenario: Scenario, streams: Optional[RandomStreams] = None
) -> ContactTrace:
    """The deterministic contact trace for *scenario*.

    Seeded by ``scenario.seed`` unless *streams* overrides the
    generator's RNG, so every engine given the same scenario simulates
    the identical contact process — the paired-comparison property the
    agreement grid (:mod:`repro.experiments.agreement`) relies on.

    A scenario with a ``contact_source`` (trace-driven and mixed-fleet
    workloads) delegates to it instead of the synthetic slot-profile
    generator; the source receives the same seeded streams, so the
    paired-comparison property holds for every workload.
    """
    resolved = streams if streams is not None else RandomStreams(scenario.seed)
    if scenario.contact_source is not None:
        return scenario.contact_source.generate(scenario, resolved)
    generator = SyntheticTraceGenerator(
        scenario.profile,
        scenario.trace_config,
        streams=resolved,
    )
    return generator.generate()


def default_factories() -> Dict[str, SchedulerFactory]:
    """The paper's three mechanisms, resolved from the named registry.

    A view onto :data:`repro.experiments.registry.mechanism_factories`
    restricted to the paper's mechanisms (SNIP-AT, SNIP-OPT, SNIP-RH),
    in figure order.  The registry is the worker-side mechanism resolver
    for parallel execution: a :class:`RunSpec` that names a registered
    mechanism can be executed in a subprocess without shipping a
    (possibly unpicklable) factory closure across the process boundary.
    """
    return {
        name: mechanism_factories.resolve(name) for name in PAPER_MECHANISMS
    }


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation cell, safe to ship to a worker.

    The scenario already carries the cell's derived seed, so executing a
    spec is a pure function: the same spec produces the same
    :class:`RunResult` in any process, on any worker, in any order.
    This is the per-cell half of the declarative spec layer: a whole
    study's worth of cells is described once by a
    :class:`~repro.experiments.spec.StudySpec` and flattened into
    ``RunSpec`` shards by :func:`~repro.experiments.spec.run_study`.

    Attributes:
        scenario: the complete configuration, seed and Φmax included.
        mechanism: scheduler name; resolved worker-side through
            :data:`repro.experiments.registry.mechanism_factories`
            unless *factory* overrides it.
        replicate: replicate index within its (mechanism, ζtarget, Φmax)
            cell (bookkeeping for aggregation; does not affect
            execution).
        factory: optional custom scheduler factory.  Must be picklable
            for process-pool execution — prefer registering it by name
            (:mod:`repro.experiments.registry`) or passing a
            :class:`~repro.experiments.registry.NamedFactory`; executors
            fall back to serial in-process execution when it is not.
        engine: simulation backend name, resolved worker-side through
            :data:`repro.experiments.registry.engine_factories` (the
            unified :class:`~repro.experiments.engine.Engine` protocol);
            default ``"fast"``, byte-identical to the historical path.
        scenario_ref: optional :class:`~repro.scenarios.ScenarioRef`
            recording which registry entry (name + canonical options)
            the materialized *scenario* came from.  Execution never
            reads it — it exists so :mod:`repro.cache.keys` can
            fingerprint registry-named scenarios canonically instead of
            hashing the whole materialized dataclass.
    """

    scenario: Scenario
    mechanism: str
    replicate: int = 0
    factory: Optional[SchedulerFactory] = None
    engine: str = "fast"
    scenario_ref: Optional[ScenarioRef] = None


def execute_run_spec(spec: RunSpec) -> RunResult:
    """Run one :class:`RunSpec` to completion (the worker entry point).

    Module-level (hence picklable by reference) so any transport can
    ship it across a process — or host — boundary: a pool task and a
    file-queue ticket (:mod:`repro.experiments.transport`) both carry
    exactly this function plus a shard list.  Both the mechanism and
    the engine cross the boundary as names and are re-resolved here, on
    the worker's side; an unknown name raises
    :class:`~repro.errors.ConfigurationError`, which propagates to the
    caller exactly once as a worker-side shard error (never a serial
    re-run of the workload).
    """
    factory = spec.factory
    if factory is None:
        factory = mechanism_factories.resolve(spec.mechanism)
    engine = resolve_engine(spec.engine)
    return engine.run(spec.scenario, factory(spec.scenario))


def execute_run_specs(specs: List[RunSpec]) -> List[RunResult]:
    """Run a shard of :class:`RunSpec` s, batching where the engine can.

    The batch-aware worker entry point: maximal runs of consecutive
    specs naming the same engine are handed to that engine's
    ``run_batch`` when it has one (the ``"vector"`` engine amortizes
    trace generation and kernel setup across the whole group); engines
    without a batch form fall back to :func:`execute_run_spec` per spec.
    Results are returned in spec order either way, and each result is
    identical to what the per-spec path would have produced, so
    transports may freely choose either entry point per shard.
    """
    results: List[RunResult] = []
    index = 0
    while index < len(specs):
        group_end = index + 1
        engine_name = specs[index].engine
        while group_end < len(specs) and specs[group_end].engine == engine_name:
            group_end += 1
        engine = resolve_engine(engine_name)
        run_batch = getattr(engine, "run_batch", None)
        if run_batch is not None:
            results.extend(run_batch(specs[index:group_end]))
        else:
            results.extend(
                execute_run_spec(spec) for spec in specs[index:group_end]
            )
        index = group_end
    return results


@dataclass
class RunResult:
    """Everything a benchmark or example needs from one run.

    ``from_cache`` marks a result replayed from the content-addressed
    cell cache (:mod:`repro.cache`) instead of executed: its metrics
    are byte-identical to a fresh run's, but the rich in-memory objects
    (``scheduler``, ``node``, ``trace``) are None — exactly the subset
    that does not round-trip through study artifacts either.
    """

    scenario: Scenario
    scheduler: Scheduler
    metrics: RunMetrics
    node: SensorNode
    trace: ContactTrace
    timeline: Optional[Timeline] = None
    from_cache: bool = False

    @property
    def mean_zeta(self) -> float:
        """Mean probed capacity per epoch (the paper's ζ plots)."""
        return self.metrics.mean_zeta

    @property
    def mean_phi(self) -> float:
        """Mean probing overhead per epoch (the paper's Φ plots)."""
        return self.metrics.mean_phi

    @property
    def mean_rho(self) -> float:
        """Mean per-unit cost (the paper's ρ plots)."""
        return self.metrics.mean_rho


class FastRunner:
    """Contact-driven simulation of one sensor node under a scheduler."""

    def __init__(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        *,
        link: LinkModel = LinkModel(),
        record_timeline: bool = False,
        trace: Optional[ContactTrace] = None,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self.link = link
        self.record_timeline = record_timeline
        self._trace_override = trace

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Simulate ``scenario.epochs`` epochs and return the result."""
        scenario = self.scenario
        profile = scenario.profile
        trace = self._trace_override or self._generate_trace()
        timeline = Timeline() if self.record_timeline else None

        node = SensorNode(
            node_id="sensor-0",
            account=ProbingAccount(budget=scenario.phi_max),
            buffer=DataBuffer(),
        )
        metrics = RunMetrics()
        contacts = list(trace)
        cursor = 0  # next unprocessed contact
        period = scenario.decision_period
        epoch_length = profile.epoch_length

        # Beacon-train anchoring: persists across intervals while the
        # same configuration stays active (a free-running radio).
        train_anchor: Optional[float] = None
        train_config: Optional[DutyCycleConfig] = None
        # A contact extending past the current interval whose fate is not
        # yet known (probing may continue or resume next interval).  At
        # most one exists because contacts never overlap.
        pending: Optional[Contact] = None
        # FIFO latency accounting: data is generated fluidly at the
        # scenario rate, so the unit at cumulative position x was created
        # at time x / rate; uploads drain oldest-first.
        self._uploaded_cumulative = 0.0

        for epoch_index in range(scenario.epochs):
            epoch_start = epoch_index * epoch_length
            epoch_end = epoch_start + epoch_length
            self.scheduler.on_epoch_start(epoch_index, node)
            epoch = EpochMetrics(epoch_index=epoch_index)

            time = epoch_start
            while time < epoch_end - TIME_EPSILON:
                interval_end = min(time + period, epoch_end)
                # The decision at `time` sees the buffer as of `time`;
                # the interval's sensing data is deposited afterwards.
                decision = self.scheduler.decide(time, node)
                node.buffer.generate(scenario.data_rate * (interval_end - time))

                if not decision.active:
                    train_anchor = None
                    train_config = None
                    active_until = time  # probing off
                    schedule = None
                else:
                    config = decision.duty_cycle
                    if config != train_config:
                        train_anchor = time
                        train_config = config
                    # Charge probing energy, clipping at the epoch budget.
                    full_cost = config.duty_cycle * (interval_end - time)
                    remaining = node.account.remaining
                    if full_cost <= remaining + TIME_EPSILON:
                        active_until = interval_end
                        charge = min(full_cost, remaining)
                    else:
                        active_until = time + remaining / config.duty_cycle
                        charge = remaining
                    node.account.charge(charge)
                    node.ledger.record(RadioState.LISTEN, charge)
                    if timeline is not None and active_until > time:
                        timeline.add("probing_active", time, active_until)
                    schedule = BeaconSchedule(config, train_anchor)
                    if active_until < interval_end - TIME_EPSILON:
                        # Budget ran dry mid-interval; the train stops.
                        train_anchor = None
                        train_config = None

                # Resolve the deferred straddler first (beacons before
                # this interval's activation do not exist for it).
                if pending is not None:
                    pending = self._resolve_one(
                        pending, time, interval_end, active_until,
                        schedule, node, epoch, timeline,
                    )
                while cursor < len(contacts) and contacts[cursor].start < interval_end:
                    contact = contacts[cursor]
                    cursor += 1
                    leftover = self._resolve_one(
                        contact, contact.start, interval_end, active_until,
                        schedule, node, epoch, timeline,
                    )
                    if leftover is not None:
                        pending = leftover
                time = interval_end

            self._finish_epoch(node, epoch, contacts, epoch_start, epoch_end)
            metrics.append(epoch)

        return RunResult(
            scenario=scenario,
            scheduler=self.scheduler,
            metrics=metrics,
            node=node,
            trace=trace,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    # contact resolution
    # ------------------------------------------------------------------
    def _resolve_one(
        self,
        contact: Contact,
        query_start: float,
        interval_end: float,
        active_until: float,
        schedule: Optional[BeaconSchedule],
        node: SensorNode,
        epoch: EpochMetrics,
        timeline: Optional[Timeline],
    ) -> Optional[Contact]:
        """Probe, miss, or defer one contact within the current interval.

        *query_start* bounds the beacon search from below: beacons before
        the probing activation (or before this interval, for a deferred
        contact) do not exist.  Returns the contact when its fate must be
        decided by a later interval (it extends past *interval_end* and
        was not probed), else None.
        """
        beacon_time = None
        if schedule is not None:
            window_start = max(contact.start, query_start)
            beacon_time = schedule.first_beacon_in(window_start, contact.end)
            if beacon_time is not None and beacon_time >= active_until:
                beacon_time = None
        if beacon_time is not None:
            probed_seconds = contact.end - beacon_time
            uploaded = node.buffer.upload(self.link.usable_window(probed_seconds))
            node.ledger.record(RadioState.TRANSMIT, uploaded)
            node.record_probe(probed_seconds)
            epoch.zeta += probed_seconds
            epoch.uploaded += uploaded
            epoch.probed_contacts += 1
            if uploaded > 0:
                self._account_latency(contact.end, uploaded, epoch)
            self.scheduler.on_probe(beacon_time, contact, probed_seconds, uploaded)
            if timeline is not None:
                timeline.add("probe", beacon_time, contact.end)
            return None
        if contact.end > interval_end + TIME_EPSILON:
            # The contact outlives this interval: probing may resume or
            # continue, so defer the verdict.
            return contact
        self._miss(contact, node, epoch)
        return None

    def _account_latency(
        self, delivery_time: float, uploaded: float, epoch: EpochMetrics
    ) -> None:
        """FIFO delivery-delay bookkeeping for one upload.

        The drained span covers cumulative positions
        [U, U + uploaded); its units were created fluidly at x / rate, so
        the amount-weighted mean creation time is (U + uploaded/2) / rate
        and the oldest unit dates from U / rate.
        """
        rate = self.scenario.data_rate
        oldest_creation = self._uploaded_cumulative / rate
        mean_creation = (self._uploaded_cumulative + uploaded / 2.0) / rate
        epoch.delivery_delay_weight += uploaded * max(
            0.0, delivery_time - mean_creation
        )
        epoch.max_delivery_delay = max(
            epoch.max_delivery_delay, delivery_time - oldest_creation
        )
        self._uploaded_cumulative += uploaded

    def _miss(self, contact: Contact, node: SensorNode, epoch: EpochMetrics) -> None:
        node.record_miss()
        epoch.missed_contacts += 1
        self.scheduler.on_miss(contact.start, contact)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _finish_epoch(
        self,
        node: SensorNode,
        epoch: EpochMetrics,
        contacts: List[Contact],
        epoch_start: float,
        epoch_end: float,
    ) -> None:
        epoch.phi = node.account.rollover()
        epoch.buffer_end_level = node.buffer.level
        arrived = [c for c in contacts if epoch_start <= c.start < epoch_end]
        epoch.arrived_contacts = len(arrived)
        epoch.arrived_capacity = sum(c.length for c in arrived)

    def _generate_trace(self) -> ContactTrace:
        return generate_trace(self.scenario)


class FastEngine:
    """The fast contact-driven engine behind the unified run API.

    The ``"fast"`` entry of
    :data:`repro.experiments.registry.engine_factories`: a stateless
    adapter satisfying the :class:`~repro.experiments.engine.Engine`
    protocol by delegating to :class:`FastRunner`.  This is the default
    engine everywhere (sweeps, grids, fleets, the CLI) and the one the
    Fig. 7/8 reproductions run on.
    """

    name = "fast"

    def run(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        *,
        trace: Optional[ContactTrace] = None,
        streams: Optional[RandomStreams] = None,
    ) -> RunResult:
        """Simulate *scenario* under *scheduler* with beacon arithmetic.

        See :meth:`repro.experiments.engine.Engine.run` for the
        parameter contract.  Byte-identical to the historical
        ``FastRunner(scenario, scheduler).run()`` path.
        """
        if trace is None:
            trace = generate_trace(scenario, streams)
        return FastRunner(scenario, scheduler, trace=trace).run()


engine_factories.register("fast", FastEngine)
