"""The cycle-accurate micro simulator (the COOJA-fidelity substitute).

Unlike the fast engine (:class:`~repro.experiments.runner.FastEngine`),
this engine enumerates *every* radio wake-up as a discrete event: the
duty-cycled radio (:class:`~repro.radio.duty_cycle.DutyCycledRadio`)
beacons at each turn-on through
:class:`~repro.protocols.snip.SnipProbing`, contacts open and close
presence windows, a CPU process consults the scheduler at the decision
period, and a data generator fills the buffer.  It is two to three
orders of magnitude slower, so it runs short horizons — the test suite,
the engine-agreement ablation, and the replicated agreement grid
(:mod:`repro.experiments.agreement`) use it to validate both equation 1
and the fast engine.

:class:`MicroEngine` is the ``"micro"`` entry of the engine registry
(:data:`repro.experiments.registry.engine_factories`) and the supported
entry point; the historical constructor-shaped :class:`MicroRunner` is
kept as a deprecated shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..core.schedulers.base import Scheduler
from ..mobility.contact import Contact, ContactTrace
from ..node.buffer import DataBuffer
from ..node.datagen import ConstantRateDataGenerator
from ..node.sensor import ProbingAccount, SensorNode
from ..protocols.snip import SnipProbe, SnipProbing
from ..radio.duty_cycle import DutyCycleConfig, DutyCycledRadio
from ..radio.states import RadioState
from ..sim.engine import Simulator
from ..sim.events import Event, EventKind
from ..sim.rng import RandomStreams
from ..units import TIME_EPSILON
from .metrics import EpochMetrics, RunMetrics
from .registry import engine_factories
from .runner import RunResult, generate_trace
from .scenario import Scenario


class MicroEngine:
    """Event-per-radio-cycle simulation of one sensor node.

    The ``"micro"`` engine of the unified run API
    (:class:`~repro.experiments.engine.Engine`): stateless, so one
    instance serves any number of runs, and a
    :class:`~repro.experiments.runner.RunSpec` carrying
    ``engine="micro"`` resolves it by name on whichever worker executes
    the shard.
    """

    name = "micro"

    def run(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        *,
        trace: Optional[ContactTrace] = None,
        streams: Optional[RandomStreams] = None,
    ) -> RunResult:
        """Simulate ``scenario.epochs`` epochs event-by-event.

        See :meth:`repro.experiments.engine.Engine.run` for the
        parameter contract.  The trace, when not supplied, is the same
        deterministic one the fast engine derives from
        ``scenario.seed`` — identical contact processes are what make
        cross-engine comparisons paired.
        """
        if trace is None:
            trace = generate_trace(scenario, streams)
        sim = Simulator()
        node = SensorNode(
            node_id="sensor-0",
            account=ProbingAccount(budget=scenario.phi_max),
            buffer=DataBuffer(),
        )
        metrics = RunMetrics()
        epoch_box = {"current": EpochMetrics(epoch_index=0)}

        # Radio: starts disabled; the CPU process drives it.
        idle_config = DutyCycleConfig(t_on=scenario.model.t_on, duty_cycle=0.5)
        radio = DutyCycledRadio(sim, idle_config, ledger=node.ledger)
        generator = ConstantRateDataGenerator(
            sim, node.buffer, scenario.data_rate, tick=scenario.decision_period
        )

        def handle_probe(probe: SnipProbe) -> None:
            generator.deposit_up_to_now()
            probed = probe.probed_seconds
            uploaded = node.buffer.upload(probed)
            node.ledger.record(RadioState.TRANSMIT, uploaded)
            node.record_probe(probed)
            epoch = epoch_box["current"]
            epoch.zeta += probed
            epoch.uploaded += uploaded
            epoch.probed_contacts += 1
            scheduler.on_probe(probe.probe_time, probe.contact, probed, uploaded)

        probing = SnipProbing(sim, radio, on_probe=handle_probe)

        # Charge the probing account per wake (Ton of on-time per cycle)
        # by wrapping the probing beacon hook.  The wake hook also
        # enforces the hard budget between CPU decisions: with Tcycle far
        # below the decision period, waiting for the next decision could
        # overshoot Φmax by many cycles.
        inner_wake = radio.on_wake

        def charged_wake(now: float) -> None:
            if node.account.remaining < radio.config.t_on - TIME_EPSILON:
                radio.disable()
                return
            node.account.charge(radio.config.t_on)
            inner_wake(now)

        radio.on_wake = charged_wake

        # CPU decision process.
        def decide(event: Event) -> None:
            generator.deposit_up_to_now()
            decision = scheduler.decide(sim.now, node)
            if decision.active and node.account.remaining >= radio.config.t_on:
                radio.set_config(decision.duty_cycle)
                radio.enable()
            else:
                radio.disable()
            sim.schedule_after(
                scenario.decision_period, decide, kind=EventKind.CPU_WAKEUP
            )

        # Contact events.
        def contact_start(event: Event) -> None:
            probing.contact_started(event.payload)

        def contact_end(event: Event) -> None:
            contact = event.payload
            before = probing.missed_count
            probing.contact_ended(contact)
            if probing.missed_count > before:
                node.record_miss()
                epoch_box["current"].missed_contacts += 1
                scheduler.on_miss(sim.now, contact)

        for contact in trace:
            sim.schedule(
                contact.start, contact_start,
                kind=EventKind.CONTACT_START, payload=contact,
            )
            sim.schedule(
                contact.end, contact_end,
                kind=EventKind.CONTACT_END, payload=contact,
            )

        # Drive epoch-by-epoch; negative priority so the boundary work
        # happens before user events at the same instant.
        epoch_length = scenario.profile.epoch_length
        scheduler.on_epoch_start(0, node)
        generator.start()
        # The radio starts parked; the first CPU decision enables it.
        radio.disable()
        radio.start()
        sim.schedule(0.0, decide, kind=EventKind.CPU_WAKEUP, priority=-1)
        for epoch_index in range(scenario.epochs):
            epoch_start = epoch_index * epoch_length
            epoch_end = epoch_start + epoch_length
            if epoch_index > 0:
                scheduler.on_epoch_start(epoch_index, node)
            sim.run_until(epoch_end, inclusive=False)
            epoch = epoch_box["current"]
            epoch.phi = node.account.rollover()
            epoch.buffer_end_level = node.buffer.level
            arrived = trace.between(epoch_start, epoch_end)
            epoch.arrived_contacts = len(arrived)
            epoch.arrived_capacity = arrived.total_capacity
            metrics.append(epoch)
            epoch_box["current"] = EpochMetrics(epoch_index=epoch_index + 1)

        radio.stop()
        return RunResult(
            scenario=scenario,
            scheduler=scheduler,
            metrics=metrics,
            node=node,
            trace=trace,
        )


engine_factories.register("micro", MicroEngine)


class MicroRunner:
    """Deprecated constructor-shaped entry point for the micro engine.

    Kept so downstream scripts migrate loudly instead of breaking:
    construction emits a :class:`DeprecationWarning` pointing at the
    engine registry.  New code should resolve the engine by name::

        from repro.experiments.engine import resolve_engine

        result = resolve_engine("micro").run(scenario, scheduler)

    (or call :class:`MicroEngine` directly), which is the shape that
    flows through ``RunSpec``, the executors, and the agreement grid.
    """

    def __init__(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        *,
        trace: Optional[ContactTrace] = None,
    ) -> None:
        warnings.warn(
            "MicroRunner(scenario, scheduler).run() is deprecated; use the "
            "engine registry instead: resolve_engine('micro').run(scenario, "
            "scheduler, trace=...) — see repro.experiments.engine",
            DeprecationWarning,
            stacklevel=2,
        )
        self.scenario = scenario
        self.scheduler = scheduler
        self._trace_override = trace

    def run(self) -> RunResult:
        """Delegate to :class:`MicroEngine` (the supported path)."""
        return MicroEngine().run(
            self.scenario, self.scheduler, trace=self._trace_override
        )


# ----------------------------------------------------------------------
# equation-1 validation harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpsilonMeasurement:
    """Monte-Carlo estimate of Υ from the cycle-accurate engine."""

    duty_cycle: float
    contact_length: float
    measured_upsilon: float
    probed_contacts: int
    total_contacts: int


def measure_upsilon(
    config: DutyCycleConfig,
    contact_length: float,
    *,
    contact_count: int = 400,
    seed: int = 7,
) -> UpsilonMeasurement:
    """Measure Υ(d, Tcontact) by running real beacon trains over contacts.

    Contacts are dropped at uniformly random phases relative to the
    beacon train (the model's assumption); the measured mean
    ``Tprobed / Tcontact`` converges to equation 1.
    """
    sim = Simulator()
    radio = DutyCycledRadio(sim, config)
    probing = SnipProbing(sim, radio)
    rng = RandomStreams(seed).stream("upsilon.phase")

    gap = max(config.t_cycle, contact_length) * 2.0
    cursor = gap
    contacts = []
    for _ in range(contact_count):
        start = cursor + float(rng.uniform(0.0, config.t_cycle))
        contacts.append(Contact(start, contact_length))
        cursor = start + contact_length + gap

    for contact in contacts:
        sim.schedule(
            contact.start,
            lambda ev: probing.contact_started(ev.payload),
            kind=EventKind.CONTACT_START,
            payload=contact,
        )
        sim.schedule(
            contact.end,
            lambda ev: probing.contact_ended(ev.payload),
            kind=EventKind.CONTACT_END,
            payload=contact,
        )

    radio.start()
    sim.run_until(contacts[-1].end + gap)
    radio.stop()

    total_probed = probing.probed_seconds
    measured = total_probed / (contact_count * contact_length)
    return UpsilonMeasurement(
        duty_cycle=config.duty_cycle,
        contact_length=contact_length,
        measured_upsilon=measured,
        probed_contacts=probing.probed_count,
        total_contacts=contact_count,
    )
