"""Experiment harness: scenarios, simulators, metrics, sweeps, reports.

* :mod:`~repro.experiments.scenario` — the paper's roadside scenario and
  general scenario configuration;
* :mod:`~repro.experiments.runner` — the fast contact-driven simulator
  (events only at contacts and decision points; beacon arithmetic is
  analytic) used for the Fig. 7 / Fig. 8 reproductions;
* :mod:`~repro.experiments.micro` — the cycle-accurate simulator that
  enumerates every radio wake-up (the COOJA-fidelity substitute), used
  to validate the fast engine and equation 1;
* :mod:`~repro.experiments.metrics` — ζ/Φ/ρ extraction and aggregation;
* :mod:`~repro.experiments.sweep` — parameter sweeps for figures and
  ablations (including the full mechanism × ζtarget × Φmax paper grid),
  with seed replication, confidence intervals, and streaming progress;
* :mod:`~repro.experiments.engine` — the unified
  :class:`~repro.experiments.engine.Engine` protocol and named engine
  resolution (one run API across the fast, micro, and future engines);
* :mod:`~repro.experiments.agreement` — replicated micro-vs-fast
  agreement grids that make the engine-equivalence claim statistical;
* :mod:`~repro.experiments.parallel` — deterministic process-pool
  orchestration of grid shards, blocking or streaming, with optional
  shard batching;
* :mod:`~repro.experiments.transport` — the pluggable
  :class:`~repro.experiments.transport.Transport` protocol and named
  execution backends (``"serial"``, ``"pool"``, ``"file-queue"``),
  including the directory-backed multi-host work queue;
* :mod:`~repro.experiments.worker` — the ``python -m repro worker``
  loop that serves file-queue tickets from any host;
* :mod:`~repro.experiments.registry` — named scheduler factories,
  engines, and transports that resolve across process boundaries;
* :mod:`~repro.experiments.reporting` — plain-text tables, series, CSV.
"""

from .scenario import Scenario, paper_roadside_scenario, PAPER_ZETA_TARGETS
from .metrics import EpochMetrics, RunMetrics
from .registry import (
    NamedFactory,
    PAPER_MECHANISMS,
    engine_factories,
    mechanism_factories,
    node_factories,
    transport_factories,
)
from .engine import (
    Engine,
    PAPER_ENGINES,
    available_engines,
    engine_names,
    resolve_engine,
)
from .runner import (
    FastEngine,
    FastRunner,
    RunResult,
    RunSpec,
    default_factories,
    execute_run_spec,
    generate_trace,
)
from .micro import MicroEngine, MicroRunner
from .agreement import (
    AGREEMENT_METRICS,
    AgreementPoint,
    AgreementResult,
    agreement_grid,
)
from .parallel import (
    Executor,
    ParallelExecutor,
    ParallelFallbackWarning,
    SerialExecutor,
    ShardError,
    StreamingExecutor,
    cell_seed,
    replicate_seed,
)
from .transport import (
    BUILTIN_TRANSPORTS,
    FileQueueTransport,
    PoolTransport,
    SerialTransport,
    Transport,
    resolve_transport,
    transport_names,
    validate_transport,
)
from .sweep import GridResult, SweepResult, sweep_grid, sweep_zeta_targets
from .spec import (
    NetworkSection,
    StudyDocument,
    StudyResult,
    StudySpec,
    run_study,
)
from .reporting import format_table, format_series

__all__ = [
    "Scenario",
    "paper_roadside_scenario",
    "PAPER_ZETA_TARGETS",
    "PAPER_MECHANISMS",
    "PAPER_ENGINES",
    "EpochMetrics",
    "RunMetrics",
    "Engine",
    "FastEngine",
    "FastRunner",
    "MicroEngine",
    "RunResult",
    "RunSpec",
    "NamedFactory",
    "engine_factories",
    "available_engines",
    "engine_names",
    "resolve_engine",
    "mechanism_factories",
    "node_factories",
    "default_factories",
    "execute_run_spec",
    "generate_trace",
    "MicroRunner",
    "AGREEMENT_METRICS",
    "AgreementPoint",
    "AgreementResult",
    "agreement_grid",
    "Executor",
    "ParallelExecutor",
    "ParallelFallbackWarning",
    "SerialExecutor",
    "ShardError",
    "StreamingExecutor",
    "BUILTIN_TRANSPORTS",
    "FileQueueTransport",
    "PoolTransport",
    "SerialTransport",
    "Transport",
    "resolve_transport",
    "transport_factories",
    "transport_names",
    "validate_transport",
    "cell_seed",
    "replicate_seed",
    "sweep_zeta_targets",
    "sweep_grid",
    "GridResult",
    "SweepResult",
    "NetworkSection",
    "StudyDocument",
    "StudyResult",
    "StudySpec",
    "run_study",
    "format_table",
    "format_series",
]
