"""Experiment harness: scenarios, simulators, metrics, sweeps, reports.

* :mod:`~repro.experiments.scenario` — the paper's roadside scenario and
  general scenario configuration;
* :mod:`~repro.experiments.runner` — the fast contact-driven simulator
  (events only at contacts and decision points; beacon arithmetic is
  analytic) used for the Fig. 7 / Fig. 8 reproductions;
* :mod:`~repro.experiments.micro` — the cycle-accurate simulator that
  enumerates every radio wake-up (the COOJA-fidelity substitute), used
  to validate the fast engine and equation 1;
* :mod:`~repro.experiments.metrics` — ζ/Φ/ρ extraction and aggregation;
* :mod:`~repro.experiments.sweep` — parameter sweeps for figures and
  ablations, with seed replication and confidence intervals;
* :mod:`~repro.experiments.parallel` — deterministic process-pool
  orchestration of sweep/replicate shards;
* :mod:`~repro.experiments.reporting` — plain-text tables and series.
"""

from .scenario import Scenario, paper_roadside_scenario, PAPER_ZETA_TARGETS
from .metrics import EpochMetrics, RunMetrics
from .runner import FastRunner, RunResult, RunSpec, default_factories, execute_run_spec
from .micro import MicroRunner
from .parallel import ParallelExecutor, SerialExecutor, cell_seed, replicate_seed
from .sweep import sweep_zeta_targets, SweepResult
from .reporting import format_table, format_series

__all__ = [
    "Scenario",
    "paper_roadside_scenario",
    "PAPER_ZETA_TARGETS",
    "EpochMetrics",
    "RunMetrics",
    "FastRunner",
    "RunResult",
    "RunSpec",
    "default_factories",
    "execute_run_spec",
    "MicroRunner",
    "ParallelExecutor",
    "SerialExecutor",
    "cell_seed",
    "replicate_seed",
    "sweep_zeta_targets",
    "SweepResult",
    "format_table",
    "format_series",
]
