"""Named scheduler-factory registries for cross-process resolution.

A scheduler factory that is a closure cannot be pickled, so PR 1's
process-pool fan-out silently degraded to serial execution whenever one
was used — ``NetworkRunner`` fleets and custom sweep mechanisms paid
for ``--jobs N`` and got 1.  This module removes that cliff: factories
are registered under a **name**, and a :class:`NamedFactory` — a frozen
dataclass holding only the name — crosses the process boundary instead
of the callable.  Workers re-resolve the name against their own copy of
the registry (populated at import time, or inherited via fork), so the
factory itself never needs to be picklable.

Five registries exist, one per factory signature:

* :data:`mechanism_factories` — ``factory(scenario) -> Scheduler``, the
  sweep/grid mechanisms (:func:`repro.experiments.runner.default_factories`
  is a view onto this registry);
* :data:`node_factories` — ``factory(scenario, node_id) -> Scheduler``,
  the per-node schedulers used by
  :class:`repro.network.runner.NetworkRunner` fleets;
* :data:`engine_factories` — ``factory() -> Engine``, the simulation
  backends behind the unified run API (``"fast"``, ``"micro"``; see
  :mod:`repro.experiments.engine`, which owns the protocol and the
  lazy-import resolution helper);
* :data:`transport_factories` — ``factory(jobs=..., batch_size=...,
  label=..., **options) -> Transport``, the execution backends shards
  run on (``"serial"``, ``"pool"``, ``"file-queue"``; see
  :mod:`repro.experiments.transport`, which owns the protocol, the
  built-in registrations, and strict option validation);
* :data:`scenario_factories` — ``factory(**options) -> Scenario``, the
  named workloads studies sweep as a fifth axis (``"paper-roadside"``,
  ``"diurnal"``, ``"trace-driven"``, ``"mixed-fleet"``,
  ``"flash-crowd"``, ``"dead-zone"``, ``"churn"``; see
  :mod:`repro.scenarios`, which owns the built-in registrations and
  the lazy-import resolution helper).

Registering a custom factory::

    from repro.experiments.registry import node_factories

    @node_factories.register("my-rh")
    def my_rh(scenario, node_id):
        return SnipRhScheduler(scenario.profile, scenario.model,
                               initial_contact_length=2.0)

    NetworkRunner(scenario, traces, "my-rh").run(
        executor=ParallelExecutor(jobs=8))   # real pool fan-out, no fallback

The paper's three mechanisms (SNIP-AT, SNIP-OPT, SNIP-RH) are
pre-registered in both registries at import time.

The registries are also what makes the declarative study layer
(:mod:`repro.experiments.spec`) portable: a
:class:`~repro.experiments.spec.StudySpec` references mechanisms,
engines, and node factories exclusively by these names, so a study
file validated against the registries here executes identically on any
host where the same registrations exist.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..core.schedulers.at import SnipAtScheduler
from ..core.schedulers.opt import SnipOptScheduler
from ..core.schedulers.rh import SnipRhScheduler
from ..errors import ConfigurationError

#: The mechanism names of the paper's evaluation, in figure order.
PAPER_MECHANISMS = ("SNIP-AT", "SNIP-OPT", "SNIP-RH")


class FactoryRegistry:
    """A name → scheduler-factory mapping with decorator registration."""

    def __init__(self, kind: str) -> None:
        """*kind* labels the registry in error messages and reprs."""
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        replace: bool = False,
    ):
        """Register *factory* under *name*; usable as a decorator.

        Direct form: ``registry.register("x", fn)``.  Decorator form::

            @registry.register("x")
            def fn(...): ...

        Re-registering an existing name raises unless ``replace=True``
        (accidental shadowing of a built-in mechanism would silently
        change every sweep that names it).
        """
        if factory is None:
            def decorator(fn: Callable) -> Callable:
                self.register(name, fn, replace=replace)
                return fn

            return decorator
        if not name:
            raise ConfigurationError(f"{self.kind} factory name must be non-empty")
        if not replace and name in self._factories:
            raise ConfigurationError(
                f"{self.kind} factory {name!r} is already registered; "
                "pass replace=True to overwrite it"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove *name* from the registry (test/teardown helper)."""
        if name not in self._factories:
            raise ConfigurationError(
                f"unknown {self.kind} factory {name!r}; known: {self.names()}"
            )
        del self._factories[name]

    def resolve(self, name: str) -> Callable:
        """The factory registered under *name*; raises on unknown names."""
        try:
            return self._factories[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} factory {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """The registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: object) -> bool:
        """True when *name* is registered."""
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        """Iterate over the registered names, sorted."""
        return iter(self.names())

    def __len__(self) -> int:
        """Number of registered factories."""
        return len(self._factories)

    def __repr__(self) -> str:
        return f"FactoryRegistry({self.kind!r}, names={self.names()})"


#: Sweep/grid mechanism factories: ``factory(scenario) -> Scheduler``.
mechanism_factories = FactoryRegistry("mechanism")

#: Per-node fleet factories: ``factory(scenario, node_id) -> Scheduler``.
node_factories = FactoryRegistry("node scheduler")

#: Simulation backends: ``factory() -> Engine`` (the unified run API).
#: Built-ins register where they are defined (``"fast"`` in
#: :mod:`repro.experiments.runner`, ``"micro"`` in
#: :mod:`repro.experiments.micro`); resolve through
#: :func:`repro.experiments.engine.resolve_engine`, which imports those
#: modules lazily for workers that have not loaded them yet.
engine_factories = FactoryRegistry("engine")

#: Execution backends: ``factory(jobs=..., batch_size=..., label=...,
#: **options) -> Transport``.  Built-ins (``"serial"``, ``"pool"``,
#: ``"file-queue"``) register in :mod:`repro.experiments.transport`;
#: resolve through
#: :func:`repro.experiments.transport.resolve_transport`, which
#: validates the per-transport options strictly before construction.
transport_factories = FactoryRegistry("transport")

#: Named workloads: ``factory(**options) -> Scenario`` (the fifth study
#: axis).  Built-ins register in :mod:`repro.scenarios.builtin`; resolve
#: through :func:`repro.scenarios.resolve_scenario`, which imports that
#: module lazily for processes that have not loaded it yet.
scenario_factories = FactoryRegistry("scenario")

#: :class:`NamedFactory` kind → registry resolved against.
_REGISTRIES: Dict[str, FactoryRegistry] = {
    "mechanism": mechanism_factories,
    "node": node_factories,
}


@dataclass(frozen=True)
class NamedFactory:
    """A picklable reference to a registered factory.

    Pickles as plain strings and re-resolves against the worker-side
    registry when called, so a ``NamedFactory`` survives any process
    boundary that the registration itself also crossed: built-ins
    register at import time, forked workers inherit the parent's
    runtime registrations, and spawned workers re-import ``__main__``
    (module-level registrations in a script run there too).  The one
    gap is a *runtime* registration made outside any importable module
    (e.g. inside a function) on a spawn-start-method platform; *module*
    records where the factory was registered so workers can import that
    module before resolving, closing the gap for module-level factories
    referenced from long-lived parents.

    Attributes:
        name: the registered factory name.
        kind: which registry to resolve against: ``"mechanism"``
            (``factory(scenario)``) or ``"node"``
            (``factory(scenario, node_id)``).
        module: optional module to import before resolving when the
            name is missing (the factory's defining module).
    """

    name: str
    kind: str = "mechanism"
    module: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _REGISTRIES:
            raise ConfigurationError(
                f"unknown registry kind {self.kind!r}; "
                f"known: {sorted(_REGISTRIES)}"
            )

    def __call__(self, *args, **kwargs):
        """Resolve the name and build the scheduler."""
        registry = _REGISTRIES[self.kind]
        import_error: Optional[ImportError] = None
        if self.name not in registry and self.module:
            # A spawned worker may not have executed the registering
            # module yet; importing it re-runs the registration.
            try:
                importlib.import_module(self.module)
            except ImportError as exc:
                import_error = exc
        try:
            factory = registry.resolve(self.name)
        except ConfigurationError as exc:
            if import_error is not None:
                raise ConfigurationError(
                    f"{exc} (importing {self.module!r} to register it "
                    f"failed: {import_error})"
                ) from import_error
            raise
        return factory(*args, **kwargs)


@mechanism_factories.register("SNIP-AT")
def snip_at_mechanism(scenario) -> SnipAtScheduler:
    """The paper's SNIP-AT (all-time probing) mechanism for a scenario."""
    return SnipAtScheduler(
        scenario.profile,
        scenario.model,
        zeta_target=scenario.zeta_target,
        phi_max=scenario.phi_max,
    )


@mechanism_factories.register("SNIP-OPT")
def snip_opt_mechanism(scenario) -> SnipOptScheduler:
    """The paper's SNIP-OPT (optimal slot allocation) mechanism."""
    return SnipOptScheduler(
        scenario.profile,
        scenario.model,
        zeta_target=scenario.zeta_target,
        phi_max=scenario.phi_max,
    )


@mechanism_factories.register("SNIP-RH")
def snip_rh_mechanism(scenario) -> SnipRhScheduler:
    """The paper's SNIP-RH (rush-hour probing) mechanism."""
    return SnipRhScheduler(
        scenario.profile, scenario.model, initial_contact_length=2.0
    )


@node_factories.register("SNIP-AT")
def snip_at_node(scenario, node_id: str) -> SnipAtScheduler:
    """Per-node SNIP-AT: every node probes all the time."""
    return snip_at_mechanism(scenario)


@node_factories.register("SNIP-OPT")
def snip_opt_node(scenario, node_id: str) -> SnipOptScheduler:
    """Per-node SNIP-OPT against the shared deployment profile."""
    return snip_opt_mechanism(scenario)


@node_factories.register("SNIP-RH")
def snip_rh_node(scenario, node_id: str) -> SnipRhScheduler:
    """Per-node SNIP-RH: each node exploits its own rush hours."""
    return snip_rh_mechanism(scenario)
