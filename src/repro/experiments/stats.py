"""Replication statistics for simulation experiments.

The paper averages two simulated weeks and notes "a lot of variance";
this module makes that rigor reproducible: run a scenario across seeds,
and report means with Student-t confidence intervals for every metric.
Used by the reporting layer and available to downstream users who want
error bars on their own sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from scipy import stats as scipy_stats

from ..core.schedulers.base import Scheduler
from ..errors import ConfigurationError
from .runner import FastRunner, RunResult
from .scenario import Scenario

SchedulerFactory = Callable[[Scenario], Scheduler]

#: The metrics replicated by default (RunResult attributes).
DEFAULT_METRICS = ("mean_zeta", "mean_phi", "mean_rho")


@dataclass(frozen=True)
class IntervalEstimate:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    replications: int

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def interval_from_samples(
    samples: Sequence[float], *, confidence: float = 0.95
) -> IntervalEstimate:
    """Student-t confidence interval from i.i.d. replications."""
    if not samples:
        raise ConfigurationError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return IntervalEstimate(mean, float("inf"), confidence, 1)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    critical = float(scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half_width = critical * math.sqrt(variance / n)
    return IntervalEstimate(mean, half_width, confidence, n)


@dataclass
class ReplicatedResult:
    """Per-metric interval estimates plus the raw runs."""

    estimates: Dict[str, IntervalEstimate]
    runs: List[RunResult]

    def __getitem__(self, metric: str) -> IntervalEstimate:
        return self.estimates[metric]


def replicate(
    scenario: Scenario,
    scheduler_factory: SchedulerFactory,
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    metrics: Sequence[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
) -> ReplicatedResult:
    """Run *scenario* across *seeds* and estimate each metric.

    The scheduler factory is invoked fresh per replication so learning
    state never leaks between seeds.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    runs: List[RunResult] = []
    for seed in seeds:
        replication = scenario.with_seed(seed)
        runs.append(FastRunner(replication, scheduler_factory(replication)).run())
    estimates = {}
    for metric in metrics:
        samples = [getattr(run, metric, None) for run in runs]
        if any(sample is None for sample in samples):
            samples = [getattr(run.metrics, metric) for run in runs]
        estimates[metric] = interval_from_samples(
            [float(s) for s in samples], confidence=confidence
        )
    return ReplicatedResult(estimates=estimates, runs=runs)
