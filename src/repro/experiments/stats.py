"""Replication statistics for simulation experiments.

The paper averages two simulated weeks and notes "a lot of variance";
this module makes that rigor reproducible: run a scenario across seeds,
and report means with Student-t confidence intervals for every metric.
Used by the reporting layer and available to downstream users who want
error bars on their own sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from scipy import stats as scipy_stats

from ..errors import ConfigurationError
from .runner import RunResult, RunSpec, SchedulerFactory, execute_run_spec
from .scenario import Scenario

#: The metrics replicated by default (RunResult attributes).
DEFAULT_METRICS = ("mean_zeta", "mean_phi", "mean_rho")


@dataclass(frozen=True)
class IntervalEstimate:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    replications: int

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def is_vacuous(self) -> bool:
        """True when the interval constrains nothing.

        A single replication (or an otherwise infinite half-width)
        yields ``low = -inf`` / ``high = +inf``: :meth:`contains` is
        then True for *every* value, so any check built on the interval
        passes trivially.  Consumers that certify results — the
        agreement gate, report tables — must treat vacuous estimates
        specially rather than letting them masquerade as evidence.
        """
        return self.replications < 2 or math.isinf(self.half_width)

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def interval_from_samples(
    samples: Sequence[float], *, confidence: float = 0.95
) -> IntervalEstimate:
    """Student-t confidence interval from i.i.d. replications."""
    if not samples:
        raise ConfigurationError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must lie in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return IntervalEstimate(mean, float("inf"), confidence, 1)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    critical = float(scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half_width = critical * math.sqrt(variance / n)
    return IntervalEstimate(mean, half_width, confidence, n)


@dataclass
class ReplicatedResult:
    """Per-metric interval estimates plus the raw runs."""

    estimates: Dict[str, IntervalEstimate]
    runs: List[RunResult]

    def __getitem__(self, metric: str) -> IntervalEstimate:
        return self.estimates[metric]


def estimates_from_runs(
    runs: Sequence[RunResult],
    *,
    metrics: Sequence[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
) -> Dict[str, IntervalEstimate]:
    """Interval-estimate each metric across replicate *runs*.

    Metric names resolve against :class:`RunResult` first and fall back
    to its :class:`~repro.experiments.metrics.RunMetrics`.  This is the
    aggregation step shared by :func:`replicate` and the replicated
    sweep path (:func:`repro.experiments.sweep.sweep_zeta_targets`).
    """
    if not runs:
        raise ConfigurationError("need at least one run")
    estimates = {}
    for metric in metrics:
        samples = [getattr(run, metric, None) for run in runs]
        if any(sample is None for sample in samples):
            samples = [getattr(run.metrics, metric) for run in runs]
        estimates[metric] = interval_from_samples(
            [float(s) for s in samples], confidence=confidence
        )
    return estimates


def replicate(
    scenario: Scenario,
    scheduler_factory: SchedulerFactory,
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    metrics: Sequence[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
    executor=None,
) -> ReplicatedResult:
    """Run *scenario* across *seeds* and estimate each metric.

    The scheduler factory is invoked fresh per replication so learning
    state never leaks between seeds.  Pass an
    :class:`~repro.experiments.parallel.ParallelExecutor` to fan the
    replications out to worker processes (the factory must then be
    picklable; unpicklable factories transparently run serially).
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    specs = [
        RunSpec(
            scenario=scenario.with_seed(seed),
            mechanism=getattr(scheduler_factory, "__name__", "custom"),
            replicate=index,
            factory=scheduler_factory,
        )
        for index, seed in enumerate(seeds)
    ]
    if executor is None:
        runs = [execute_run_spec(spec) for spec in specs]
    else:
        runs = executor.map(execute_run_spec, specs)
    return ReplicatedResult(
        estimates=estimates_from_runs(runs, metrics=metrics, confidence=confidence),
        runs=list(runs),
    )
