"""The ``"vector"`` engine: numpy batch evaluation of the fast runner.

The fast engine (:mod:`repro.experiments.runner`) spends nearly all of
its time in per-interval Python work: two weeks of 60-second decision
intervals is ~20k iterations of ``scheduler.decide`` + buffer arithmetic
+ :class:`~repro.radio.beacon.BeaconSchedule` construction per run, and
the checked-in ``BENCH_transport.json`` shows that cell cost — not the
orchestration — is the bottleneck of the paper grid.  This module
resolves the same semantics as whole-array kernels:

* **SNIP-AT / SNIP-OPT** are open-loop (their decisions depend only on
  the slot clock and the energy budget), so the full activation
  timeline — per-interval duty-cycle, budget-crossing clip, beacon-train
  anchors — is computed vectorized over all ``epochs x intervals`` at
  once, and every contact is resolved against it with O(rounds) numpy
  passes (a contact straddles at most ``length / period`` intervals).
* **SNIP-RH** is feedback-driven, but its state changes *only at probed
  contacts* and it can only activate inside rush-hour slots; the engine
  walks just the rush intervals (a ~6x smaller loop with no per-interval
  object allocation), calls the real scheduler's EWMA hooks at probes,
  and resolves everything outside rush hours in bulk.
* Any other scheduler type falls back — loudly — to the exact
  :class:`~repro.experiments.runner.FastRunner`.

Unprobed contacts, arrivals, per-epoch Φ, and buffer levels are
aggregated as array reductions.  The per-contact probe search also has
an optional `numba <https://numba.pydata.org/>`_ ``@njit(parallel=True)``
kernel behind a **soft dependency**: when numba is not importable the
pure-numpy path runs (and is what CI exercises); ``VectorEngine`` never
requires it unless constructed with ``numba=True``.

Equivalence with ``"fast"`` is statistical, not asserted: the paired
fast-vs-vector agreement grid (``repro-snip run --spec
examples/vector_gate.json --gate TOL``) must pass the CI gate with two
or more replicates.  The engine reproduces the fast runner's arithmetic
(same ``TIME_EPSILON`` comparisons, same anchor/clip rules) so the
per-cell deltas are dominated by float association order and sit many
orders of magnitude below the gate tolerance.

Batch evaluation: :meth:`VectorEngine.run_batch` takes a whole shard of
:class:`~repro.experiments.runner.RunSpec` s and shares the expensive
deterministic trace generation between specs that differ only in
mechanism, ζtarget or Φmax (the contact process depends only on the
profile, the trace config and the seed).  The module-level entry point
for that is :func:`repro.experiments.runner.execute_run_specs`.
"""

from __future__ import annotations

import math
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.schedulers.at import SnipAtScheduler
from ..core.schedulers.base import Scheduler
from ..core.schedulers.opt import SnipOptScheduler
from ..core.schedulers.rh import SnipRhScheduler
from ..errors import ConfigurationError
from ..mobility.contact import ContactTrace
from ..node.buffer import DataBuffer
from ..node.sensor import ProbingAccount, SensorNode
from ..radio.link import LinkModel
from ..radio.states import RadioState
from ..sim.rng import RandomStreams
from ..units import TIME_EPSILON
from .metrics import EpochMetrics, RunMetrics
from .registry import engine_factories, mechanism_factories
from .runner import FastRunner, RunResult, RunSpec, generate_trace
from .scenario import Scenario

__all__ = ["VectorEngine", "numba_available"]

#: Budget-exhaustion tolerance, mirroring
#: :attr:`repro.node.sensor.ProbingAccount.exhausted`.
_EXHAUSTED_EPSILON = 1e-12


# ----------------------------------------------------------------------
# soft numba dependency
# ----------------------------------------------------------------------
def _import_numba():
    """The numba module, or None when it is not importable.

    Resolved at call time (not import time) so tests can monkeypatch
    ``sys.modules`` and engines constructed afterwards see the change.
    """
    try:
        import numba  # noqa: PLC0415 - soft dependency, resolved lazily
    except ImportError:
        return None
    return numba


def numba_available() -> bool:
    """True when the optional numba accelerator can be imported."""
    return _import_numba() is not None


#: Compiled probe-search kernels, one per (fake or real) numba module.
_KERNEL_CACHE: Dict[int, object] = {}


def _numba_probe_search(numba_mod):
    """Compile (once per numba module) the scalar probe-search kernel."""
    key = id(numba_mod)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        njit = numba_mod.njit
        prange = numba_mod.prange
        eps = TIME_EPSILON

        @njit(parallel=True, cache=False)
        def kernel(starts, ends, k0, active, active_until, anchor, cycle, t1):
            n = starts.shape[0]
            n_intervals = t1.shape[0]
            probe_k = np.full(n, -1, np.int64)
            probe_b = np.full(n, np.nan)
            for j in prange(n):
                k = k0[j]
                query = starts[j]
                while k < n_intervals:
                    window = starts[j] if starts[j] > query else query
                    if active[k]:
                        phase = anchor[k] % cycle[k]
                        if window <= phase:
                            beacon = phase
                        else:
                            index = np.ceil((window - phase - eps) / cycle[k])
                            if index < 0.0:
                                index = 0.0
                            beacon = phase + index * cycle[k]
                        if beacon < ends[j] and beacon < active_until[k]:
                            probe_k[j] = k
                            probe_b[j] = beacon
                            break
                    if ends[j] <= t1[k] + eps:
                        break
                    query = t1[k]
                    k += 1
            return probe_k, probe_b

        _KERNEL_CACHE[key] = kernel
        kernel = _KERNEL_CACHE[key]
    return kernel


def _probe_search_numpy(starts, ends, k0, active, active_until, anchor, cycle, t1):
    """Vectorized probe search: rounds of simultaneous interval steps.

    Returns ``(probe_k, probe_b)``: per contact, the resolving interval
    index and beacon time of its probe, or ``(-1, nan)`` when the
    contact goes unprobed.  Semantics mirror the fast runner's
    ``_resolve_one`` exactly: within each interval the contact is probed
    by the first beacon of the interval's anchored train inside
    ``[max(start, query), end)`` that precedes ``active_until``;
    otherwise it defers to the next interval iff it outlives this one,
    else it resolves as a miss.
    """
    n = starts.shape[0]
    n_intervals = t1.shape[0]
    probe_k = np.full(n, -1, np.int64)
    probe_b = np.full(n, np.nan)
    k = k0.astype(np.int64).copy()
    query = starts.copy()
    alive = k < n_intervals
    while alive.any():
        idxs = np.nonzero(alive)[0]
        ka = k[idxs]
        window = np.maximum(starts[idxs], query[idxs])
        act = active[ka]
        cyc = cycle[ka]
        phase = np.mod(anchor[ka], cyc)
        index = np.maximum(np.ceil((window - phase - TIME_EPSILON) / cyc), 0.0)
        beacon = np.where(window <= phase, phase, phase + index * cyc)
        probed = act & (beacon < ends[idxs]) & (beacon < active_until[ka])
        missed = ~probed & (ends[idxs] <= t1[ka] + TIME_EPSILON)
        deferred = ~probed & ~missed
        hits = idxs[probed]
        probe_k[hits] = ka[probed]
        probe_b[hits] = beacon[probed]
        cont = idxs[deferred]
        query[cont] = t1[ka[deferred]]
        k[cont] = ka[deferred] + 1
        alive[idxs[probed]] = False
        alive[idxs[missed]] = False
        alive[cont] = k[cont] < n_intervals
    return probe_k, probe_b


# ----------------------------------------------------------------------
# shared per-run bookkeeping
# ----------------------------------------------------------------------
class _ProbeBook:
    """Sequential FIFO buffer/latency bookkeeping over probed contacts.

    Probes must be applied in resolution order (ascending contact index:
    contacts never overlap, and a deferred straddler always resolves
    before any later contact) so the fluid FIFO buffer drains exactly as
    in the fast runner.
    """

    def __init__(self, scenario: Scenario, link: LinkModel, epochs: int) -> None:
        self.rate = scenario.data_rate
        self.link = link
        self.uploaded_cumulative = 0.0
        self.zeta = np.zeros(epochs)
        self.uploaded = np.zeros(epochs)
        self.probed_n = np.zeros(epochs, dtype=np.int64)
        self.delay_weight = np.zeros(epochs)
        self.max_delay = np.zeros(epochs)

    def probe(
        self, end: float, beacon: float, interval_end: float, epoch: int
    ) -> Tuple[float, float]:
        """Apply one probe; returns ``(probed_seconds, uploaded)``."""
        probed_seconds = end - beacon
        window = self.link.usable_window(probed_seconds)
        level = max(0.0, self.rate * interval_end - self.uploaded_cumulative)
        uploaded = window if window < level else level
        self.zeta[epoch] += probed_seconds
        self.uploaded[epoch] += uploaded
        self.probed_n[epoch] += 1
        if uploaded > 0:
            oldest_creation = self.uploaded_cumulative / self.rate
            mean_creation = (
                self.uploaded_cumulative + uploaded / 2.0
            ) / self.rate
            self.delay_weight[epoch] += uploaded * max(0.0, end - mean_creation)
            self.max_delay[epoch] = max(
                self.max_delay[epoch], end - oldest_creation
            )
        self.uploaded_cumulative += uploaded
        return probed_seconds, uploaded


# ----------------------------------------------------------------------
# trace memoization (per process)
# ----------------------------------------------------------------------
_TRACE_MEMO: "OrderedDict[Tuple[object, ...], ContactTrace]" = OrderedDict()
_TRACE_MEMO_LIMIT = 8


def _memoized_trace(scenario: Scenario) -> ContactTrace:
    """The deterministic trace for *scenario*, cached per process.

    The contact process depends only on the profile, the trace config,
    the contact source, and the seed — not on ζtarget, Φmax or the
    mechanism — so a grid shard reuses one generation across all cells
    that share a replicate seed.  Traces are treated as immutable by
    every engine, so sharing one instance across :class:`RunResult` s
    is safe.
    """
    key = (
        scenario.profile,
        scenario.trace_config,
        scenario.contact_source,
        scenario.seed,
    )
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = generate_trace(scenario)
        _TRACE_MEMO[key] = trace
        while len(_TRACE_MEMO) > _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(key)
    return trace


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class VectorEngine:
    """Vectorized batch evaluator behind the ``"vector"`` registry name.

    Args:
        numba: ``None`` (default) auto-detects the optional numba
            accelerator and uses it when importable; ``True`` requires
            it (:class:`~repro.errors.ConfigurationError` when absent);
            ``False`` forces the pure-numpy probe-search path.

    Any other keyword raises :class:`~repro.errors.ConfigurationError`
    (engines resolve by name from study files, so silent typos in the
    options dict must fail fast).
    """

    name = "vector"

    def __init__(self, numba: Optional[bool] = None, **options: object) -> None:
        if options:
            raise ConfigurationError(
                f"unknown vector engine option(s) {sorted(options)}; "
                "known: ['numba']"
            )
        if numba not in (None, True, False):
            raise ConfigurationError(
                f"numba option must be True, False or None, got {numba!r}"
            )
        module = None
        if numba is not False:
            module = _import_numba()
            if numba is True and module is None:
                raise ConfigurationError(
                    "vector engine was constructed with numba=True but "
                    "numba is not importable; install numba or pass "
                    "numba=None for the pure-numpy fallback"
                )
        self._numba = module

    @property
    def numba_enabled(self) -> bool:
        """True when the compiled probe-search kernel is in use."""
        return self._numba is not None

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------
    def run(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        *,
        trace: Optional[ContactTrace] = None,
        streams: Optional[RandomStreams] = None,
    ) -> RunResult:
        """Simulate *scenario* under *scheduler* with array kernels.

        See :meth:`repro.experiments.engine.Engine.run` for the
        parameter contract.  Scheduler types without a vectorized kernel
        fall back to the exact :class:`FastRunner` with a
        ``RuntimeWarning``.
        """
        if trace is None:
            if streams is not None:
                trace = generate_trace(scenario, streams)
            else:
                trace = _memoized_trace(scenario)
        if type(scheduler) in (SnipAtScheduler, SnipOptScheduler):
            return self._run_static(scenario, scheduler, trace)
        if type(scheduler) is SnipRhScheduler:
            return self._run_adaptive(scenario, scheduler, trace)
        warnings.warn(
            "vector engine has no vectorized kernel for scheduler type "
            f"{type(scheduler).__name__}; falling back to the exact fast "
            "runner for this run",
            RuntimeWarning,
            stacklevel=2,
        )
        return FastRunner(scenario, scheduler, trace=trace).run()

    def run_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Evaluate a whole shard of :class:`RunSpec` s.

        The batch form of the engine: deterministic trace generation is
        shared between specs whose contact processes coincide (same
        profile, trace config and seed), which is every cell of a grid
        shard that varies only mechanism, ζtarget or Φmax.  Results are
        returned in spec order, each identical to what
        :func:`~repro.experiments.runner.execute_run_spec` would produce
        for the same spec.
        """
        results: List[RunResult] = []
        for spec in specs:
            factory = spec.factory
            if factory is None:
                factory = mechanism_factories.resolve(spec.mechanism)
            results.append(
                self.run(spec.scenario, factory(spec.scenario))
            )
        return results

    # ------------------------------------------------------------------
    # interval grid
    # ------------------------------------------------------------------
    @staticmethod
    def _interval_grid(scenario: Scenario):
        """Per-interval start/end times over all epochs, plus shape."""
        epoch_length = scenario.profile.epoch_length
        period = scenario.decision_period
        epochs = scenario.epochs
        per_epoch = int(math.ceil((epoch_length - TIME_EPSILON) / period))
        offsets = np.arange(per_epoch) * period
        end_offsets = np.minimum(offsets + period, epoch_length)
        epoch_starts = np.arange(epochs) * epoch_length
        t0 = (epoch_starts[:, None] + offsets[None, :]).reshape(-1)
        t1 = (epoch_starts[:, None] + end_offsets[None, :]).reshape(-1)
        epoch_idx = np.repeat(np.arange(epochs), per_epoch)
        return t0, t1, epoch_idx, epochs, per_epoch

    @staticmethod
    def _slot_indices(profile, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`SlotProfile.slot_index` over *times*."""
        position = np.mod(times, profile.epoch_length)
        raw = np.floor_divide(position, profile.slot_length).astype(np.int64)
        return np.minimum(raw, profile.slot_count - 1)

    # ------------------------------------------------------------------
    # static (open-loop) kernel: SNIP-AT and SNIP-OPT
    # ------------------------------------------------------------------
    def _run_static(
        self, scenario: Scenario, scheduler: Scheduler, trace: ContactTrace
    ) -> RunResult:
        link = LinkModel()
        t0, t1, epoch_idx, epochs, per_epoch = self._interval_grid(scenario)

        # Per-interval planned duty-cycle (0 = decision off by plan).
        if type(scheduler) is SnipAtScheduler:
            duty = np.full(t0.shape[0], scheduler.duty_cycle)
            t_on = scheduler.model.t_on
        else:
            slot = self._slot_indices(scheduler.profile, t0)
            duty_by_slot = np.asarray(scheduler.plan.duty_cycles, dtype=float)
            duty = duty_by_slot[slot]
            t_on = scheduler.model.t_on

        active, active_until, clipped, phi = self._activation(
            duty, t0, t1, epochs, per_epoch, scenario.phi_max
        )
        anchor = self._anchors(active, clipped, duty, t0)
        safe_duty = np.where(duty > 0.0, duty, 1.0)
        cycle = t_on / safe_duty

        contacts = list(trace)
        starts = np.array([c.start for c in contacts], dtype=float)
        lengths = np.array([c.length for c in contacts], dtype=float)
        ends = starts + lengths
        k0 = np.searchsorted(t1, starts, side="right")
        probe_k, probe_b = self._probe_search(
            starts, ends, k0, active, active_until, anchor, cycle, t1
        )

        book = _ProbeBook(scenario, link, epochs)
        for j in np.nonzero(probe_k >= 0)[0]:
            k = int(probe_k[j])
            book.probe(float(ends[j]), float(probe_b[j]), float(t1[k]), int(epoch_idx[k]))
        return self._assemble(
            scenario, scheduler, trace, starts, lengths, probe_k,
            t1, epoch_idx, epochs, phi, book,
        )

    @staticmethod
    def _activation(
        duty: np.ndarray,
        t0: np.ndarray,
        t1: np.ndarray,
        epochs: int,
        per_epoch: int,
        phi_max: float,
    ):
        """Resolve the per-interval energy accrual against the budget.

        Mirrors the fast runner's per-interval charging: full cost
        ``d * dt`` while it fits inside the remaining budget (within
        ``TIME_EPSILON``), an exact mid-interval clip at the crossing
        (``active_until = t + remaining / d``) when the remainder is
        spendable, and decision-off (``budget``) for the rest of the
        epoch.  Returns per-interval ``(active, active_until, clipped)``
        plus per-epoch Φ.
        """
        plan = (duty > 0.0).reshape(epochs, per_epoch)
        dt = (t1 - t0).reshape(epochs, per_epoch)
        d2 = duty.reshape(epochs, per_epoch)
        full_cost = np.where(plan, d2 * dt, 0.0)
        cum = np.cumsum(full_cost, axis=1)
        over = plan & (cum > phi_max + TIME_EPSILON)
        cross = np.where(over.any(axis=1), over.argmax(axis=1), per_epoch)
        k_idx = np.arange(per_epoch)[None, :]
        fully = plan & (k_idx < cross[:, None])
        at_cross = plan & (k_idx == cross[:, None])
        remaining_before = phi_max - (cum - full_cost)
        clip_ok = at_cross & (remaining_before > _EXHAUSTED_EPSILON)
        active = (fully | clip_ok).reshape(-1)
        safe_duty = np.where(duty > 0.0, duty, 1.0)
        active_until = np.where(
            fully.reshape(-1),
            t1,
            np.where(
                clip_ok.reshape(-1),
                t0 + np.maximum(remaining_before.reshape(-1), 0.0) / safe_duty,
                t0,
            ),
        )
        clipped = clip_ok.reshape(-1) & (active_until < t1 - TIME_EPSILON)
        phi = np.minimum(cum[:, -1], phi_max)
        return active, active_until, clipped, phi

    @staticmethod
    def _anchors(
        active: np.ndarray,
        clipped: np.ndarray,
        config_key: np.ndarray,
        t0: np.ndarray,
    ) -> np.ndarray:
        """Per-interval beacon-train anchor times.

        The fast runner re-anchors the train at the first interval of
        every maximal run of consecutive active intervals with an
        unchanged configuration, and also after a mid-interval budget
        clip (the train stops).  Epoch boundaries do *not* reset an
        uninterrupted train — a free-running radio.
        """
        n = active.shape[0]
        breaks = np.ones(n, dtype=bool)
        if n > 1:
            breaks[1:] = (
                ~active[:-1]
                | (config_key[1:] != config_key[:-1])
                | clipped[:-1]
            )
        new_streak = active & breaks
        streak_start = np.where(new_streak, np.arange(n), -1)
        np.maximum.accumulate(streak_start, out=streak_start)
        return np.where(
            streak_start >= 0, t0[np.maximum(streak_start, 0)], 0.0
        )

    def _probe_search(self, starts, ends, k0, active, active_until, anchor, cycle, t1):
        if self._numba is not None:
            kernel = _numba_probe_search(self._numba)
            return kernel(
                starts, ends, k0.astype(np.int64),
                active, active_until, anchor, cycle, t1,
            )
        return _probe_search_numpy(
            starts, ends, k0, active, active_until, anchor, cycle, t1
        )

    # ------------------------------------------------------------------
    # adaptive (feedback) kernel: SNIP-RH
    # ------------------------------------------------------------------
    def _run_adaptive(
        self, scenario: Scenario, scheduler: SnipRhScheduler, trace: ContactTrace
    ) -> RunResult:
        """Event-driven SNIP-RH: walk rush intervals only.

        SNIP-RH state (the two EWMAs) changes only at probed contacts,
        and it can only probe inside rush-hour slots, so the walk visits
        just the rush intervals — with the real scheduler's
        ``duty_cycle_config`` / ``data_threshold`` / ``on_probe`` driving
        the decisions, for bit-faithful learning dynamics — and every
        other contact resolves as a bulk miss afterwards.
        """
        link = LinkModel()
        rate = scenario.data_rate
        phi_max = scenario.phi_max
        t0, t1, epoch_idx, epochs, _ = self._interval_grid(scenario)
        slot = self._slot_indices(scheduler.profile, t0)
        rush_by_slot = np.asarray(scheduler.rush_flags, dtype=bool)
        walk = np.nonzero(rush_by_slot[slot])[0]

        contacts = list(trace)
        n_contacts = len(contacts)
        starts = np.array([c.start for c in contacts], dtype=float)
        lengths = np.array([c.length for c in contacts], dtype=float)
        ends = starts + lengths
        probed_mask = np.zeros(n_contacts, dtype=bool)
        probe_interval = np.full(n_contacts, -1, dtype=np.int64)

        book = _ProbeBook(scenario, link, epochs)
        phi = np.zeros(epochs)
        spent = 0.0
        current_epoch = 0
        anchor: Optional[float] = None
        config = None
        pending: Optional[int] = None
        cursor = 0
        previous_k = -2

        for k in walk:
            time = float(t0[k])
            interval_end = float(t1[k])
            epoch = int(epoch_idx[k])
            if epoch != current_epoch:
                # Epoch rollover(s): Φ is the energy spent that epoch.
                phi[current_epoch] = spent
                spent = 0.0
                current_epoch = epoch
            if previous_k != k - 1:
                # Skipped intervals are inactive (not rush): the fast
                # runner would have reset the train there.
                anchor = None
                config = None
            previous_k = k
            if pending is not None and ends[pending] <= time + TIME_EPSILON:
                # Resolved as a miss inside a skipped interval.
                pending = None
            while cursor < n_contacts and starts[cursor] < time:
                # Contacts that arrived in skipped intervals: unprobed;
                # one may still straddle into this interval as pending.
                if ends[cursor] > time + TIME_EPSILON:
                    pending = cursor
                cursor += 1

            # --- scheduler.decide(time, node), inlined for SNIP-RH ---
            level = max(0.0, rate * time - book.uploaded_cumulative)
            remaining = max(0.0, phi_max - spent)
            if level < scheduler.data_threshold():
                decision_config = None
            elif remaining <= _EXHAUSTED_EPSILON:
                decision_config = None
            else:
                decision_config = scheduler.duty_cycle_config()

            if decision_config is None:
                anchor = None
                config = None
                active_until = time
                have_schedule = False
                cycle = phase = 0.0
            else:
                if decision_config != config:
                    anchor = time
                    config = decision_config
                full_cost = decision_config.duty_cycle * (interval_end - time)
                if full_cost <= remaining + TIME_EPSILON:
                    active_until = interval_end
                    charge = min(full_cost, remaining)
                else:
                    active_until = time + remaining / decision_config.duty_cycle
                    charge = remaining
                spent += charge
                have_schedule = True
                cycle = decision_config.t_cycle
                phase = anchor % cycle
                if active_until < interval_end - TIME_EPSILON:
                    # Budget ran dry mid-interval; the train stops.
                    anchor = None
                    config = None

            def resolve(j: int, query: float) -> bool:
                """Probe/miss/defer contact *j*; True when resolved."""
                if have_schedule:
                    window = starts[j] if starts[j] > query else query
                    if window <= phase:
                        beacon = phase
                    else:
                        beacon = phase + max(
                            0.0,
                            np.ceil((window - phase - TIME_EPSILON) / cycle),
                        ) * cycle
                    if beacon < ends[j] and beacon < active_until:
                        probed_seconds, uploaded = book.probe(
                            float(ends[j]), float(beacon), interval_end, epoch
                        )
                        probed_mask[j] = True
                        probe_interval[j] = k
                        scheduler.on_probe(
                            beacon, contacts[j], probed_seconds, uploaded
                        )
                        return True
                return ends[j] <= interval_end + TIME_EPSILON

            if pending is not None:
                if resolve(pending, time):
                    pending = None
            while cursor < n_contacts and starts[cursor] < interval_end:
                j = cursor
                cursor += 1
                if not resolve(j, float(starts[j])):
                    pending = j
        phi[current_epoch] = spent

        return self._assemble(
            scenario, scheduler, trace, starts, lengths,
            np.where(probed_mask, probe_interval, -1),
            t1, epoch_idx, epochs, phi, book,
        )

    # ------------------------------------------------------------------
    # result assembly (shared)
    # ------------------------------------------------------------------
    def _assemble(
        self,
        scenario: Scenario,
        scheduler: Scheduler,
        trace: ContactTrace,
        starts: np.ndarray,
        lengths: np.ndarray,
        probe_k: np.ndarray,
        t1: np.ndarray,
        epoch_idx: np.ndarray,
        epochs: int,
        phi: np.ndarray,
        book: _ProbeBook,
    ) -> RunResult:
        epoch_length = scenario.profile.epoch_length
        n_intervals = t1.shape[0]

        # Misses: every unprobed contact resolves in the first interval
        # that contains its end (within TIME_EPSILON) — the exact
        # deferral rule of the fast runner.  Contacts outliving the last
        # interval stay pending forever and are never counted missed.
        unprobed = probe_k < 0
        if starts.shape[0]:
            ends = starts + lengths
            miss_k = np.searchsorted(t1, ends - TIME_EPSILON, side="left")
            considered = starts < t1[-1]
            missable = unprobed & considered & (miss_k < n_intervals)
            missed = np.zeros(epochs, dtype=np.int64)
            np.add.at(missed, epoch_idx[miss_k[missable]], 1)
            arrival_epoch = np.floor_divide(starts, epoch_length).astype(np.int64)
            in_run = arrival_epoch < epochs
            arrived = np.zeros(epochs, dtype=np.int64)
            arrived_capacity = np.zeros(epochs)
            np.add.at(arrived, arrival_epoch[in_run], 1)
            np.add.at(
                arrived_capacity,
                arrival_epoch[in_run],
                lengths[in_run],
            )
        else:
            missed = np.zeros(epochs, dtype=np.int64)
            arrived = np.zeros(epochs, dtype=np.int64)
            arrived_capacity = np.zeros(epochs)

        rate = scenario.data_rate
        uploads_through = np.cumsum(book.uploaded)
        epoch_ends = (np.arange(epochs) + 1.0) * epoch_length
        buffer_end = np.maximum(0.0, rate * epoch_ends - uploads_through)

        metrics = RunMetrics()
        for e in range(epochs):
            metrics.append(
                EpochMetrics(
                    epoch_index=e,
                    zeta=float(book.zeta[e]),
                    phi=float(phi[e]),
                    uploaded=float(book.uploaded[e]),
                    probed_contacts=int(book.probed_n[e]),
                    missed_contacts=int(missed[e]),
                    arrived_contacts=int(arrived[e]),
                    arrived_capacity=float(arrived_capacity[e]),
                    buffer_end_level=float(buffer_end[e]),
                    delivery_delay_weight=float(book.delay_weight[e]),
                    max_delivery_delay=float(book.max_delay[e]),
                )
            )

        node = SensorNode(
            node_id="sensor-0",
            account=ProbingAccount(budget=scenario.phi_max),
            buffer=DataBuffer(),
        )
        node.buffer.generate(rate * epochs * epoch_length)
        node.buffer.upload(book.uploaded_cumulative)
        node.ledger.record(RadioState.LISTEN, float(np.sum(phi)))
        node.ledger.record(RadioState.TRANSMIT, book.uploaded_cumulative)
        node.probed_contacts = int(book.probed_n.sum())
        node.probed_time = float(book.zeta.sum())
        node.missed_contacts = int(missed.sum())

        return RunResult(
            scenario=scenario,
            scheduler=scheduler,
            metrics=metrics,
            node=node,
            trace=trace,
            timeline=None,
        )


engine_factories.register("vector", VectorEngine)
