"""Replicated cross-engine agreement grids (micro vs fast, statistically).

The paper's quantities are produced by the fast contact-driven engine;
the cycle-accurate micro engine (the COOJA-fidelity substitute, per the
SNIP companion paper) is the ground truth it must reproduce.  Until the
unified :class:`~repro.experiments.engine.Engine` protocol existed,
that equivalence was validated only by ad-hoc short-horizon tests; this
module makes the claim **statistical**: a replicated
``mechanism × ζtarget × Φmax × replicate × engine`` grid where each
cell's replicate seeds are shared between the engines, so every
comparison is paired on an identical contact process, and the per-cell
deltas carry Student-t confidence intervals
(:func:`repro.experiments.stats.estimates_from_runs` /
:func:`~repro.experiments.stats.interval_from_samples`).

:func:`agreement_grid` is now a thin compatibility wrapper over the
declarative study layer: it builds a two-engine
:class:`~repro.experiments.spec.StudySpec` and hands it to
:func:`~repro.experiments.spec.run_study`, which flattens the grid into
pure :class:`~repro.experiments.runner.RunSpec` shards — the engine
name is just one more spec field — and executes it through the same
executor/streaming machinery as :func:`repro.experiments.sweep.sweep_grid`,
so the assembled result is byte-identical for jobs=1, jobs=N, or any
adversarial completion order, and micro cells (orders of magnitude
slower; keep horizons short) interleave with fast cells on the pool.

CLI: ``repro-snip agree`` (also ``python -m repro agree``); the gate
variant used in CI is :meth:`AgreementResult.gate_violations` /
``repro-snip agree --gate TOL``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .parallel import Executor
from .registry import PAPER_MECHANISMS
from .reporting import format_csv
from .runner import RunResult
from .scenario import Scenario
from .stats import IntervalEstimate, estimates_from_runs, interval_from_samples
from .sweep import ProgressCallback, _finite_or_none

__all__ = [
    "AGREEMENT_METRICS",
    "AGREEMENT_EXPORT_COLUMNS",
    "AgreementPoint",
    "AgreementResult",
    "agreement_grid",
]

#: The per-cell metrics whose candidate-minus-baseline deltas are
#: interval-estimated: the paper's ζ and Φ per-epoch means plus the
#: per-epoch probed-contact count (the discrete quantity the engines
#: must agree on contact-by-contact).
AGREEMENT_METRICS = ("mean_zeta", "mean_phi", "probed_per_epoch")


def _metric_value(result: RunResult, metric: str) -> float:
    """Extract one agreement metric from a run."""
    if metric == "probed_per_epoch":
        return result.metrics.total_probed / result.metrics.epoch_count
    return float(getattr(result, metric))


@dataclass
class AgreementPoint:
    """One (mechanism, ζtarget, Φmax) cell of a two-engine comparison.

    Holds the replicate runs of both engines — *baseline* and
    *candidate* replicate ``r`` share the same scenario seed, hence the
    same contact trace — plus interval estimates: per-engine metric CIs
    (via :func:`~repro.experiments.stats.estimates_from_runs`) and the
    paired per-replicate candidate−baseline deltas for every
    :data:`AGREEMENT_METRICS` entry.
    """

    mechanism: str
    zeta_target: float
    phi_max: float
    baseline: List[RunResult]
    candidate: List[RunResult]
    baseline_estimates: Optional[Dict[str, IntervalEstimate]] = None
    candidate_estimates: Optional[Dict[str, IntervalEstimate]] = None
    deltas: Dict[str, IntervalEstimate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.baseline) != len(self.candidate) or not self.baseline:
            raise ConfigurationError(
                "baseline and candidate need the same positive replicate "
                f"count, got {len(self.baseline)} vs {len(self.candidate)}"
            )
        if self.baseline_estimates is None:
            self.baseline_estimates = estimates_from_runs(self.baseline)
        if self.candidate_estimates is None:
            self.candidate_estimates = estimates_from_runs(self.candidate)
        if not self.deltas:
            self.deltas = {
                metric: interval_from_samples(
                    [
                        _metric_value(cand, metric) - _metric_value(base, metric)
                        for base, cand in zip(self.baseline, self.candidate)
                    ]
                )
                for metric in AGREEMENT_METRICS
            }

    @property
    def n_replicates(self) -> int:
        """Paired replicates behind this cell."""
        return len(self.baseline)

    def delta(self, metric: str) -> IntervalEstimate:
        """The candidate−baseline CI for one :data:`AGREEMENT_METRICS` entry."""
        try:
            return self.deltas[metric]
        except KeyError:
            raise ConfigurationError(
                f"unknown agreement metric {metric!r}; "
                f"known: {sorted(self.deltas)}"
            ) from None

    def engine_mean(self, side: str, metric: str) -> float:
        """Replicate mean of *metric* for ``"baseline"`` or ``"candidate"``.

        Served from the per-engine interval estimates where the metric
        has one (``mean_zeta``/``mean_phi``/``mean_rho``), computed
        directly otherwise (``probed_per_epoch``).
        """
        if side == "baseline":
            estimates, selected = self.baseline_estimates, self.baseline
        elif side == "candidate":
            estimates, selected = self.candidate_estimates, self.candidate
        else:
            raise ConfigurationError(
                f"side must be 'baseline' or 'candidate', got {side!r}"
            )
        if estimates is not None and metric in estimates:
            return estimates[metric].mean
        return sum(_metric_value(run, metric) for run in selected) / len(selected)


#: Column order shared by :meth:`AgreementResult.to_csv`/``to_json``.
AGREEMENT_EXPORT_COLUMNS = (
    "baseline_engine", "candidate_engine",
    "phi_max", "zeta_target", "mechanism", "n_replicates",
    "baseline_mean_zeta", "candidate_mean_zeta",
    "delta_mean_zeta", "delta_mean_zeta_low", "delta_mean_zeta_high",
    "baseline_mean_phi", "candidate_mean_phi",
    "delta_mean_phi", "delta_mean_phi_low", "delta_mean_phi_high",
    "baseline_probed_per_epoch", "candidate_probed_per_epoch",
    "delta_probed_per_epoch", "delta_probed_per_epoch_low",
    "delta_probed_per_epoch_high",
)


@dataclass
class AgreementResult:
    """A full two-engine agreement grid.

    Points are ordered Φmax-outermost, then ζtarget, then mechanism
    (matching the shard flattening of :func:`agreement_grid`).
    """

    points: List[AgreementPoint]
    engines: Tuple[str, str]
    phi_maxes: Tuple[float, ...]
    zeta_targets: Tuple[float, ...]
    mechanisms: Tuple[str, ...]

    @property
    def baseline_engine(self) -> str:
        """The reference engine name (usually ``"fast"``)."""
        return self.engines[0]

    @property
    def candidate_engine(self) -> str:
        """The engine under validation (usually ``"micro"``)."""
        return self.engines[1]

    @property
    def n_replicates(self) -> int:
        """Paired replicates per cell (uniform across the grid)."""
        return self.points[0].n_replicates if self.points else 0

    def budget(self, phi_max: float) -> List[AgreementPoint]:
        """The cells of one Φmax budget, in (ζtarget, mechanism) order."""
        key = float(phi_max)
        if key not in {float(value) for value in self.phi_maxes}:
            raise ConfigurationError(
                f"no Phi_max {phi_max!r} in this agreement grid; have "
                f"{sorted(self.phi_maxes)}"
            )
        return [point for point in self.points if point.phi_max == key]

    def max_abs_delta(self, metric: str) -> float:
        """Largest |mean candidate−baseline delta| across all cells."""
        return max(abs(point.delta(metric).mean) for point in self.points)

    def cell_rows(self) -> List[Dict[str, object]]:
        """One flat record per cell (columns:
        :data:`AGREEMENT_EXPORT_COLUMNS`)."""
        rows: List[Dict[str, object]] = []
        for point in self.points:
            row: Dict[str, object] = {
                "baseline_engine": self.baseline_engine,
                "candidate_engine": self.candidate_engine,
                "phi_max": point.phi_max,
                "zeta_target": point.zeta_target,
                "mechanism": point.mechanism,
                "n_replicates": point.n_replicates,
            }
            for metric in AGREEMENT_METRICS:
                delta = point.delta(metric)
                row[f"baseline_{metric}"] = _finite_or_none(
                    point.engine_mean("baseline", metric)
                )
                row[f"candidate_{metric}"] = _finite_or_none(
                    point.engine_mean("candidate", metric)
                )
                row[f"delta_{metric}"] = _finite_or_none(delta.mean)
                row[f"delta_{metric}_low"] = _finite_or_none(delta.low)
                row[f"delta_{metric}_high"] = _finite_or_none(delta.high)
            rows.append(row)
        return rows

    def gate_violations(
        self,
        tolerance: float,
        *,
        metrics: Sequence[str] = AGREEMENT_METRICS,
    ) -> List[str]:
        """Cells whose paired delta CI excludes zero beyond *tolerance*.

        The CI-based agreement gate (ROADMAP "agreement tolerance gates
        in CI"): a cell violates the gate when its candidate−baseline
        confidence interval lies **entirely** outside ``[-tolerance,
        tolerance]`` — i.e. the data rules out both "the engines agree"
        and "they disagree by no more than the golden tolerance".

        A single-replicate cell has an infinite half-width, so its CI
        can never exclude the tolerance band: such a gate would pass
        *vacuously*, certifying nothing.  Rather than silently bless the
        grid, the gate refuses to run — any gated cell whose delta has
        fewer than two replications raises
        :class:`~repro.errors.ConfigurationError` (under the CLI's
        ``--gate`` this surfaces as a nonzero exit).  Run two or more
        paired replicates to make the gate meaningful.

        Returns one human-readable line per violating (cell, metric),
        empty when the grid passes.
        """
        if tolerance < 0:
            raise ConfigurationError(
                f"gate tolerance must be >= 0, got {tolerance}"
            )
        under_replicated = [
            f"{point.mechanism} zeta_target={point.zeta_target:g} "
            f"Phi_max={point.phi_max:g} "
            f"(replications={min(point.delta(metric).replications for metric in metrics)})"
            for point in self.points
            if any(
                point.delta(metric).replications < 2 for metric in metrics
            )
        ]
        if under_replicated:
            raise ConfigurationError(
                "agreement gate is vacuous below 2 paired replicates (an "
                "infinite delta CI can never exclude the tolerance band); "
                "re-run with replicates >= 2. Offending cell(s): "
                + "; ".join(under_replicated)
            )
        violations: List[str] = []
        for point in self.points:
            for metric in metrics:
                delta = point.delta(metric)
                if delta.low > tolerance or delta.high < -tolerance:
                    violations.append(
                        f"{point.mechanism} zeta_target={point.zeta_target:g} "
                        f"Phi_max={point.phi_max:g} {metric}: delta {delta} "
                        f"excludes 0 beyond ±{tolerance:g}"
                    )
        return violations

    def to_dict(self) -> Dict[str, object]:
        """The agreement grid as a JSON-clean document."""
        return {
            "baseline_engine": self.baseline_engine,
            "candidate_engine": self.candidate_engine,
            "phi_maxes": list(self.phi_maxes),
            "zeta_targets": list(self.zeta_targets),
            "mechanisms": list(self.mechanisms),
            "n_replicates": self.n_replicates,
            "cells": self.cell_rows(),
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The agreement grid as a strict-JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """The agreement grid as CSV text, one row per cell."""
        return format_csv(
            AGREEMENT_EXPORT_COLUMNS,
            [
                [row[column] for column in AGREEMENT_EXPORT_COLUMNS]
                for row in self.cell_rows()
            ],
        )

    def __iter__(self) -> Iterator[AgreementPoint]:
        """Iterate the cells in flattening order."""
        return iter(self.points)

    def __len__(self) -> int:
        """Number of (Φmax, ζtarget, mechanism) cells."""
        return len(self.points)


def agreement_grid(
    base: Scenario,
    zeta_targets: Sequence[float],
    phi_maxes: Sequence[float],
    *,
    engines: Tuple[str, str] = ("fast", "micro"),
    mechanisms: Optional[Sequence[str]] = None,
    n_replicates: int = 1,
    replicate_seeds: Optional[Sequence[int]] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    transport: Optional[str] = None,
    transport_options: Optional[Mapping[str, object]] = None,
    jobs: int = 1,
) -> AgreementResult:
    """Run a replicated paired two-engine grid through the executor.

    Every ``(mechanism, ζtarget, Φmax, replicate)`` cell is executed
    once per engine, and both engine runs of a replicate share that
    replicate's derived seed — identical contact processes, so the
    per-cell deltas measure the engines, not the traces.  All five axes
    are flattened up front into pure
    :class:`~repro.experiments.runner.RunSpec` shards (Φmax outermost,
    then ζtarget, mechanism, replicate, engine) on the seeding contract
    of :mod:`repro.experiments.parallel`; reassembly is by shard index,
    so the result is byte-identical for any worker count or execution
    order.

    Args:
        base: scenario template; its seed anchors replicate 0 and its
            ``epochs`` bounds every run — keep it short (1–2 epochs):
            half the shards run the micro engine.
        zeta_targets: the ζtarget sweep values.
        phi_maxes: the Φmax budgets, in seconds; must be distinct.
        engines: ``(baseline, candidate)`` engine-registry names,
            distinct; default ``("fast", "micro")``.  Unknown names
            fail fast here, before any shard runs.
        mechanisms: registry mechanism names (default: the paper's
            three).
        n_replicates: paired seed replicates per cell (two or more make
            the delta CIs finite).
        replicate_seeds: explicit per-replicate seeds overriding the
            derivation.
        executor: shard mapper; default serial in-process.  An explicit
            executor wins over *transport*.
        progress: optional streaming observer (specs carry ``.engine``,
            so a CLI can label each completed cell).
        transport: execution backend by transport-registry name
            (``"serial"``, ``"pool"``, ``"file-queue"``, ...), resolved
            with *jobs* and *transport_options* exactly like a study
            file's execution section.
        transport_options: strict per-transport options dict.
        jobs: worker processes when resolving by name.

    Returns:
        An :class:`AgreementResult` with per-cell paired delta CIs.
    """
    # Thin builder over the declarative study layer: a two-engine axis
    # on a StudySpec *is* an agreement grid (run_study pairs the deltas
    # automatically), so this wrapper only translates arguments and
    # selects the candidate's AgreementResult out of the StudyResult.
    from .spec import StudySpec, run_study

    if len(tuple(engines)) != 2:
        raise ConfigurationError(
            f"agreement needs exactly two distinct engines, got {engines!r}"
        )
    names = tuple(mechanisms) if mechanisms is not None else PAPER_MECHANISMS
    spec = StudySpec(
        name="agreement-grid",
        zeta_targets=tuple(zeta_targets),
        phi_maxes=tuple(phi_maxes),
        epochs=base.epochs,
        seed=base.seed,
        mechanisms=names,
        engines=tuple(engines),
        replicates=n_replicates,
        replicate_seeds=(
            tuple(replicate_seeds) if replicate_seeds is not None else None
        ),
        jobs=jobs,
        transport=transport,
        transport_options=dict(transport_options or {}),
        with_predictions=False,
    )
    study = run_study(spec, base=base, executor=executor, progress=progress)
    return study.agreements[spec.engines[1]]
