"""Constant-rate data generation.

The paper's simulation generates sensed data "with a constant rate
derived from ζtarget" (§VII-A-2): producing exactly ζtarget
upload-seconds of reports per epoch means the target capacity is just
enough to keep the buffer drained.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.events import EventKind
from ..sim.process import Process
from ..units import require_positive
from .buffer import DataBuffer


def data_rate_for_target(zeta_target: float, epoch_length: float) -> float:
    """Data rate (upload-seconds per second) that fills ζtarget per epoch."""
    require_positive("zeta_target", zeta_target)
    require_positive("epoch_length", epoch_length)
    return zeta_target / epoch_length


class ConstantRateDataGenerator(Process):
    """Deposits sensed data into a buffer at a constant rate.

    Data accrual is continuous in the model; the process ticks at a
    configurable granularity and deposits ``rate * tick`` each time,
    which converges to the fluid limit for any tick far below the epoch
    length.  A finer tick costs more events; the default (one minute) is
    ~0.07 upload-seconds per tick at the paper's smallest target.
    """

    def __init__(
        self,
        sim: Simulator,
        buffer: DataBuffer,
        rate: float,
        *,
        tick: float = 60.0,
    ) -> None:
        super().__init__(sim, name="data-generator", kind=EventKind.DATA_GENERATED)
        self.buffer = buffer
        self.rate = require_positive("rate", rate)
        self.tick = require_positive("tick", tick)
        self._last_deposit_time: Optional[float] = None

    def on_start(self) -> float:
        self._last_deposit_time = self.sim.now
        return self.tick

    def on_tick(self) -> float:
        self.deposit_up_to_now()
        return self.tick

    def deposit_up_to_now(self) -> None:
        """Deposit data accrued since the last deposit.

        Also invoked by the simulators right before a probing decision,
        so the buffer level a scheduler sees is exact regardless of tick
        granularity.
        """
        if self._last_deposit_time is None:
            return
        elapsed = self.sim.now - self._last_deposit_time
        if elapsed > 0:
            self.buffer.generate(self.rate * elapsed)
            self._last_deposit_time = self.sim.now
