"""Mobile node model.

Per the paper's reference model, a mobile node (a phone carried by a
person) has a rechargeable battery and keeps its radio always on while
participating, so it hears every beacon transmitted within range.  The
class tracks presence windows and the data it has collected, which the
examples use to report per-courier statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import SimulationError


@dataclass
class MobileNode:
    """An always-on mobile data collector."""

    node_id: str = "mobile"
    #: Total data received from sensor nodes, in upload-seconds.
    collected: float = 0.0
    #: Completed (start, end) presence windows at the sensor.
    visits: List[Tuple[float, float]] = field(default_factory=list)
    _in_range_since: Optional[float] = None

    @property
    def in_range(self) -> bool:
        """True while the node is inside the sensor's communication disk."""
        return self._in_range_since is not None

    def enter_range(self, time: float) -> None:
        """Mark the start of a contact."""
        if self.in_range:
            raise SimulationError(f"mobile {self.node_id} already in range")
        self._in_range_since = time

    def leave_range(self, time: float) -> None:
        """Mark the end of a contact."""
        if not self.in_range:
            raise SimulationError(f"mobile {self.node_id} not in range")
        start = self._in_range_since
        self._in_range_since = None
        if time < start:
            raise SimulationError("contact cannot end before it starts")
        self.visits.append((start, time))

    def receive(self, amount: float) -> None:
        """Record *amount* upload-seconds of data collected."""
        if amount < 0:
            raise SimulationError(f"cannot receive negative data {amount}")
        self.collected += amount

    @property
    def visit_count(self) -> int:
        """Number of completed visits."""
        return len(self.visits)

    def total_dwell(self) -> float:
        """Total seconds spent in range across completed visits."""
        return sum(end - start for start, end in self.visits)
