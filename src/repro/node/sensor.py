"""Sensor node state.

A :class:`SensorNode` bundles what the paper's schedulers read and
write: the report buffer, the probing energy ledger with its per-epoch
account, and running statistics about probed contacts.  It is protocol-
agnostic — SNIP and the scheduling mechanisms operate *on* a node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from ..radio.energy import EnergyLedger
from ..units import require_non_negative, require_positive
from .buffer import DataBuffer


@dataclass
class ProbingAccount:
    """Per-epoch ledger of probing energy (the paper's Φ and Φmax).

    The schedulers must never let epoch spending exceed the budget; the
    account enforces it arithmetically by answering "how much on-time may
    I still spend" rather than trusting callers.
    """

    budget: float
    spent: float = 0.0

    def __post_init__(self) -> None:
        require_positive("budget", self.budget)
        require_non_negative("spent", self.spent)

    @property
    def remaining(self) -> float:
        """On-time seconds still spendable this epoch (never negative)."""
        return max(0.0, self.budget - self.spent)

    @property
    def exhausted(self) -> bool:
        """True when no budget remains (within float tolerance)."""
        return self.remaining <= 1e-12

    def charge(self, on_time: float) -> None:
        """Record *on_time* seconds of probing radio time."""
        if on_time < 0:
            raise ConfigurationError(f"cannot charge negative on-time {on_time}")
        self.spent += on_time

    def rollover(self) -> float:
        """Start a new epoch; returns the previous epoch's spending."""
        previous = self.spent
        self.spent = 0.0
        return previous


@dataclass
class SensorNode:
    """A static, duty-cycled sensor node.

    Attributes:
        node_id: identifier used in traces and reports.
        buffer: pending sensor reports (upload-seconds).
        account: per-epoch probing energy account.
        ledger: physical energy ledger (per radio state).
        probed_contacts: number of successfully probed contacts so far.
        probed_time: cumulative Tprobed over all contacts (lifetime ζ).
    """

    node_id: str
    account: ProbingAccount
    buffer: DataBuffer = field(default_factory=DataBuffer)
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    probed_contacts: int = 0
    probed_time: float = 0.0
    missed_contacts: int = 0

    def record_probe(self, probed_seconds: float) -> None:
        """Account one successfully probed contact."""
        require_non_negative("probed_seconds", probed_seconds)
        self.probed_contacts += 1
        self.probed_time += probed_seconds

    def record_miss(self) -> None:
        """Account one contact that passed unprobed."""
        self.missed_contacts += 1

    @property
    def contact_miss_ratio(self) -> Optional[float]:
        """Fraction of contacts missed (None before any contact)."""
        total = self.probed_contacts + self.missed_contacts
        if total == 0:
            return None
        return self.missed_contacts / total
