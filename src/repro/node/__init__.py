"""Node layer: the sensor node and mobile node endpoints.

* :mod:`~repro.node.buffer` — the sensor node's report buffer;
* :mod:`~repro.node.datagen` — constant-rate sensing (the paper derives
  the data rate from ζtarget);
* :mod:`~repro.node.sensor` — sensor node state: buffer + energy ledger
  + per-epoch probing accounts;
* :mod:`~repro.node.mobile` — mobile node: always-on radio, sojourn
  bookkeeping.
"""

from .buffer import DataBuffer
from .datagen import ConstantRateDataGenerator, data_rate_for_target
from .sensor import SensorNode
from .mobile import MobileNode

__all__ = [
    "DataBuffer",
    "ConstantRateDataGenerator",
    "data_rate_for_target",
    "SensorNode",
    "MobileNode",
]
