"""The sensor node's report buffer.

Data is measured in *upload seconds* — the probed contact time needed to
ship it — which keeps the unit system identical to the paper's capacity
metric ζ.  :class:`~repro.radio.link.LinkModel` converts to bytes when
an application wants physical units.

The buffer supports a capacity limit with drop accounting, because a
node whose scheduler under-probes (e.g. SNIP-AT under a tight energy
budget) will eventually overflow storage; the drop counter makes that
failure visible in experiments.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError


class DataBuffer:
    """FIFO-equivalent fluid buffer of pending sensor reports."""

    def __init__(self, capacity: Optional[float] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._level = 0.0
        self.total_generated = 0.0
        self.total_uploaded = 0.0
        self.total_dropped = 0.0

    @property
    def level(self) -> float:
        """Currently buffered data, in upload-seconds."""
        return self._level

    @property
    def free_space(self) -> float:
        """Remaining space (inf when uncapped)."""
        if self.capacity is None:
            return float("inf")
        return self.capacity - self._level

    def generate(self, amount: float) -> float:
        """Add newly sensed data; returns the amount actually stored.

        Data beyond capacity is dropped and counted in
        :attr:`total_dropped`.
        """
        if amount < 0:
            raise ConfigurationError(f"generated amount must be >= 0, got {amount}")
        self.total_generated += amount
        stored = min(amount, self.free_space)
        self._level += stored
        self.total_dropped += amount - stored
        return stored

    def upload(self, window: float) -> float:
        """Drain up to *window* upload-seconds; returns the amount shipped."""
        if window < 0:
            raise ConfigurationError(f"upload window must be >= 0, got {window}")
        shipped = min(window, self._level)
        self._level -= shipped
        self.total_uploaded += shipped
        return shipped

    def conservation_error(self) -> float:
        """|generated - uploaded - dropped - level|; zero is the invariant."""
        return abs(
            self.total_generated
            - self.total_uploaded
            - self.total_dropped
            - self._level
        )
