"""Heterogeneous-fleet contact source: per-class arrival processes.

The paper's roadside unit only ever meets one kind of mobile — the
commuter vehicle whose rush-hour slot profile drives every scheduler.
Real deployments are messier: vehicles, pedestrian-carried sensors, and
fixed roadside units all pass the sink with wildly different interval
and contact-length statistics.  :class:`MixedFleetSource` composes one
:class:`~repro.mobility.arrival.ArrivalProcess` per node class — each
drawing from its own named RNG substream (``fleet.<class>.*``), so the
merged trace is independent of class iteration order — and merges the
class traces into a single non-overlapping contact stream (the sparse
single-radio sink can only probe one mobile at a time; later-starting
contacts are clipped to the previous contact's end, exactly like the
``ArrivalProcess.generate`` contract within one class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..mobility.arrival import (
    ArrivalProcess,
    DeterministicArrivals,
    NormalJitterArrivals,
    PoissonArrivals,
)
from ..mobility.contact import Contact, ContactTrace

__all__ = ["FleetClass", "MixedFleetSource", "FLEET_STYLES"]

#: Arrival-process styles a fleet class may use.
FLEET_STYLES = ("normal", "poisson", "deterministic")


@dataclass(frozen=True)
class FleetClass:
    """One node class: a name plus its arrival-process statistics.

    ``style`` selects the process family: ``"normal"``
    (:class:`NormalJitterArrivals`, jitter ``cv``), ``"poisson"``
    (:class:`PoissonArrivals`, exponential lengths), or
    ``"deterministic"`` (:class:`DeterministicArrivals`, which requires
    ``mean_length < mean_interval``).
    """

    name: str
    style: str
    mean_interval: float
    mean_length: float
    cv: float = 0.1

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"fleet class name must be a non-empty string, got {self.name!r}"
            )
        if self.style not in FLEET_STYLES:
            raise ConfigurationError(
                f"unknown fleet class style {self.style!r} for "
                f"{self.name!r}; known: {sorted(FLEET_STYLES)}"
            )
        if self.mean_interval <= 0:
            raise ConfigurationError(
                f"fleet class {self.name!r}: mean_interval must be "
                f"positive, got {self.mean_interval}"
            )
        if self.mean_length <= 0:
            raise ConfigurationError(
                f"fleet class {self.name!r}: mean_length must be "
                f"positive, got {self.mean_length}"
            )
        if self.cv < 0:
            raise ConfigurationError(
                f"fleet class {self.name!r}: cv must be >= 0, got {self.cv}"
            )

    def process(self, streams) -> ArrivalProcess:
        """Build this class's arrival process on the given streams."""
        prefix = f"fleet.{self.name}"
        if self.style == "normal":
            return NormalJitterArrivals(
                self.mean_interval,
                self.mean_length,
                streams=streams,
                cv=self.cv,
                stream_prefix=prefix,
            )
        if self.style == "poisson":
            return PoissonArrivals(
                self.mean_interval,
                self.mean_length,
                streams=streams,
                stream_prefix=prefix,
            )
        return DeterministicArrivals(self.mean_interval, self.mean_length)


@dataclass(frozen=True)
class MixedFleetSource:
    """Merge per-class arrival traces into one non-overlapping stream.

    Each class generates contacts over the full horizon from its own
    named substreams, the union is sorted by ``(start, length, id)``
    (a total, seed-stable order), and overlaps across classes are
    clipped: a contact beginning before the previous one ends starts
    at that end instead, and disappears when wholly swallowed.
    """

    classes: Tuple[FleetClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("mixed fleet needs at least one class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"fleet class names must be distinct, got {names}"
            )

    def generate(self, scenario, streams) -> ContactTrace:
        """Generate the merged fleet trace over the scenario horizon."""
        horizon = scenario.epochs * scenario.profile.epoch_length
        merged: List[Contact] = []
        for fleet_class in self.classes:
            process = fleet_class.process(streams)
            trace = process.generate(0.0, horizon, mobile_id=fleet_class.name)
            merged.extend(trace)
        merged.sort(key=lambda c: (c.start, c.length, c.mobile_id))
        contacts: List[Contact] = []
        previous_end = 0.0
        for contact in merged:
            begin = max(contact.start, previous_end)
            if begin >= horizon or contact.end <= begin:
                continue
            contacts.append(Contact(begin, contact.end - begin, contact.mobile_id))
            previous_end = contact.end
        return ContactTrace(contacts)
