"""Named scenarios: the workload as a fifth study axis.

The paper evaluates SNIP on exactly one workload — the §VII-A roadside
rush-hour scenario.  This package makes the workload pluggable by name,
exactly like mechanisms, engines, node factories, and transports:
:data:`repro.experiments.registry.scenario_factories` maps a name to a
``factory(**options) -> Scenario`` callable, and ``StudySpec`` sweeps a
tuple of :class:`ScenarioRef` entries (``axes.scenarios``) over the
mechanism × ζtarget × Φmax × replicate × engine grid.

Built-ins (registered in :mod:`repro.scenarios.builtin`, imported
lazily by :func:`resolve_scenario` / :func:`available_scenarios`):

* ``"paper-roadside"`` — the unchanged §VII-A scenario
  (:func:`repro.experiments.scenario.paper_roadside_scenario`);
* ``"diurnal"`` — parameterized multi-peak time-of-day contact-rate
  profiles (peak hours, widths, peak-to-baseline interval ratio);
* ``"trace-driven"`` — contacts replayed from a CSV/JSONL/native trace
  file through the streaming reader in :mod:`repro.mobility.traces`
  (city-scale inputs are never fully materialized);
* ``"mixed-fleet"`` — heterogeneous node classes (vehicles, pedestrian
  sensors, roadside units), each with its own
  :class:`repro.mobility.arrival.ArrivalProcess`;
* ``"flash-crowd"`` / ``"dead-zone"`` / ``"churn"`` — adversarial
  workloads: a short extreme-density burst, coverage holes with zero
  contact opportunity, and epoch-to-epoch rate drift + rush-hour shift.

Module-level imports here are deliberately light (no
``repro.experiments`` import): ``experiments.spec`` imports this module
at its own import time, so the registry and the built-in factories are
pulled in lazily inside the resolution helpers to keep the import graph
acyclic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..experiments.scenario import Scenario

__all__ = [
    "DEFAULT_SCENARIO",
    "ScenarioRef",
    "available_scenarios",
    "materialize_scenario",
    "resolve_scenario",
    "scenario_names",
]

#: The scenario every pre-existing spec implicitly ran: omitting
#: ``axes.scenarios`` is byte-identical to ``("paper-roadside",)``.
DEFAULT_SCENARIO = "paper-roadside"


def _json_clean(value: Any, where: str) -> Any:
    """Normalize an option value to canonical JSON-clean python.

    Sequences become lists, mappings become key-sorted dicts with
    string keys, scalars pass through — so two refs that serialize to
    the same JSON document compare equal regardless of how they were
    constructed (tuples from python code, lists from a spec file).
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_clean(item, where) for item in value]
    if isinstance(value, Mapping):
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"{where}: option keys must be strings, got {key!r}"
                )
        return {key: _json_clean(value[key], where) for key in sorted(value)}
    raise ConfigurationError(
        f"{where}: option values must be JSON-clean "
        f"(str/int/float/bool/None/list/dict), got {type(value).__name__}"
    )


@dataclass(frozen=True)
class ScenarioRef:
    """One ``axes.scenarios`` entry: a registry name plus factory options.

    Serializes as the bare name string when ``options`` is empty and as
    ``{"name": ..., "options": {...}}`` otherwise; options are
    normalized to canonical JSON form (key-sorted, lists not tuples) so
    serialization is byte-stable and equality is representation-free.
    """

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"scenario name must be a non-empty string, got {self.name!r}"
            )
        if not isinstance(self.options, Mapping):
            raise ConfigurationError(
                f"scenario {self.name!r} options must be a mapping, "
                f"got {type(self.options).__name__}"
            )
        where = f"scenario {self.name!r}"
        object.__setattr__(self, "options", _json_clean(dict(self.options), where))

    @classmethod
    def from_entry(cls, entry: Any, where: str = "scenarios") -> "ScenarioRef":
        """Parse a spec entry (``name`` or ``{name, options}``) strictly."""
        if isinstance(entry, ScenarioRef):
            return entry
        if isinstance(entry, str):
            return cls(name=entry)
        if isinstance(entry, Mapping):
            unknown = sorted(set(entry) - {"name", "options"})
            if unknown:
                raise ConfigurationError(
                    f"unknown {where} key(s) {unknown}; "
                    "entries are a name string or {'name': ..., 'options': {...}}"
                )
            if "name" not in entry:
                raise ConfigurationError(f"{where}: entry is missing 'name'")
            return cls(name=entry["name"], options=entry.get("options") or {})
        raise ConfigurationError(
            f"{where}: expected a scenario name or {{'name', 'options'}} "
            f"mapping, got {type(entry).__name__}"
        )

    def to_entry(self) -> Any:
        """The JSON-clean spec form: bare name, or ``{name, options}``."""
        if not self.options:
            return self.name
        return {"name": self.name, "options": dict(self.options)}

    @property
    def label(self) -> str:
        """A stable human-readable identity, unique per (name, options)."""
        if not self.options:
            return self.name
        encoded = json.dumps(
            self.options, sort_keys=True, separators=(",", ":")
        )
        return f"{self.name}{encoded}"


def resolve_scenario(name: str):
    """Return the registered scenario factory for ``name``.

    Imports :mod:`repro.scenarios.builtin` first so the built-in
    registrations exist in any process (workers included) regardless of
    import order, mirroring
    :func:`repro.experiments.engine.resolve_engine`.
    """
    from ..experiments.registry import scenario_factories
    from . import builtin  # noqa: F401  (registers the built-ins)

    return scenario_factories.resolve(name)


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario (built-ins included)."""
    from ..experiments.registry import scenario_factories
    from . import builtin  # noqa: F401  (registers the built-ins)

    return scenario_factories.names()


#: Alias matching the ``engine_names`` idiom.
scenario_names = available_scenarios


def materialize_scenario(
    ref: ScenarioRef,
    *,
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
) -> "Scenario":
    """Build the :class:`Scenario` a ref names, applying study overrides.

    The factory owns the workload shape (profile, contact source,
    decision period); the study owns the horizon and base seed, so
    ``epochs`` and ``seed`` — when given — replace whatever the factory
    returned, exactly as ``StudySpec.base_scenario`` always did for the
    paper scenario.
    """
    import dataclasses

    factory = resolve_scenario(ref.name)
    try:
        scenario = factory(**dict(ref.options))
    except TypeError as exc:
        raise ConfigurationError(
            f"scenario {ref.name!r} rejected options "
            f"{sorted(ref.options)}: {exc}"
        ) from exc
    if epochs is not None:
        scenario = dataclasses.replace(scenario, epochs=epochs)
    if seed is not None:
        scenario = scenario.with_seed(seed)
    return scenario
