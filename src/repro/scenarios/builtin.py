"""Built-in scenario factories: the paper workload plus six others.

Every factory here registers into
:data:`repro.experiments.registry.scenario_factories` at import time
(module level, so workers resolve names after a plain import — the
``registry-worker-resolvable`` lint rule checks this).  Factories take
keyword-only options and return a fully-formed
:class:`~repro.experiments.scenario.Scenario`; ``run_study`` then
overrides the study-owned fields (``epochs``, ``seed``, and per-cell
``zeta_target``/``phi_max``), so options describe the workload *shape*
only.

The seven built-ins:

========================  ==================================================
``"paper-roadside"``      the unchanged §VII-A rush-hour scenario
``"diurnal"``             parameterized multi-peak time-of-day profile
``"trace-driven"``        contacts replayed from a CSV/JSONL/native file
``"mixed-fleet"``         vehicles + pedestrians + roadside units, each
                          with its own arrival process
``"flash-crowd"``         quiet day with one short extreme-density burst
``"dead-zone"``           rush-hour day with coverage holes (no contacts)
``"churn"``               epoch-to-epoch rate drift and rush-hour shift
========================  ==================================================
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..core.snip_model import SnipModel
from ..errors import ConfigurationError
from ..experiments.registry import scenario_factories
from ..experiments.scenario import (
    PAPER_T_ON,
    Scenario,
    paper_roadside_scenario,
)
from ..mobility.profiles import RushHourSpec, SlotProfile
from ..mobility.synthetic import ArrivalStyle, TraceConfig
from ..mobility.traces import TraceFileSource
from ..units import DAY, HOUR, require_positive
from .fleet import FleetClass, MixedFleetSource

__all__ = [
    "churn_scenario",
    "dead_zone_scenario",
    "diurnal_scenario",
    "flash_crowd_scenario",
    "mixed_fleet_scenario",
    "trace_driven_scenario",
]

#: Default fleet mix: commuter vehicles dominate, pedestrian-carried
#: sensors linger longer but come rarely, roadside units are sparse and
#: metronomic.
_DEFAULT_FLEET = (
    {"name": "vehicle", "style": "normal",
     "mean_interval": 600.0, "mean_length": 2.0},
    {"name": "pedestrian", "style": "poisson",
     "mean_interval": 2400.0, "mean_length": 6.0},
    {"name": "roadside-unit", "style": "deterministic",
     "mean_interval": 7200.0, "mean_length": 12.0},
)


def _hour_windows(
    windows: Sequence[Sequence[float]], what: str
) -> Tuple[Tuple[float, float], ...]:
    """Validate ``((lo_hours, hi_hours), ...)`` window options."""
    cleaned = []
    for window in windows:
        if len(window) != 2:
            raise ConfigurationError(
                f"{what} entries must be (start_hour, end_hour) pairs, "
                f"got {tuple(window)!r}"
            )
        lo, hi = float(window[0]), float(window[1])
        if not 0 <= lo < hi <= 24:
            raise ConfigurationError(
                f"{what} window ({lo}, {hi}) must satisfy 0 <= start < "
                f"end <= 24 hours"
            )
        cleaned.append((lo, hi))
    if not cleaned:
        raise ConfigurationError(f"{what} needs at least one window")
    return tuple(cleaned)


def _scenario_from_profile(profile: SlotProfile, *, t_on: float) -> Scenario:
    """Wrap a profile with the paper's model and default sweep anchors.

    The anchors (ζtarget 16 s, Φmax = Tepoch/1000) are placeholders:
    ``run_study`` replaces them per cell, and direct callers use
    ``with_target``/``with_budget`` exactly as with the paper factory.
    """
    return Scenario(
        profile=profile,
        model=SnipModel(t_on=require_positive("t_on", t_on)),
        phi_max=DAY / 1000.0,
        zeta_target=16.0,
        trace_config=TraceConfig(style=ArrivalStyle.NORMAL, cv=0.1),
    )


scenario_factories.register("paper-roadside", paper_roadside_scenario)


@scenario_factories.register("diurnal")
def diurnal_scenario(
    *,
    peaks: Sequence[float] = (8.0, 17.5),
    widths: Sequence[float] = (2.0, 2.0),
    ratio: float = 6.0,
    baseline_interval: float = 1800.0,
    contact_length: float = 2.0,
    slot_count: int = 24,
    t_on: float = PAPER_T_ON,
) -> Scenario:
    """Multi-peak time-of-day contact-rate profile.

    Generalizes the paper's two rush hours: each peak ``i`` is centred
    at hour ``peaks[i]`` with total width ``widths[i]`` hours, and the
    mean inter-contact interval inside any peak is
    ``baseline_interval / ratio`` (so ``ratio`` is the peak-to-baseline
    contact-*rate* ratio).  Peak slots are marked rush.
    """
    if len(peaks) == 0:
        raise ConfigurationError("diurnal needs at least one peak")
    if len(widths) != len(peaks):
        raise ConfigurationError(
            f"diurnal widths ({len(widths)}) must match peaks ({len(peaks)})"
        )
    if ratio < 1:
        raise ConfigurationError(
            f"diurnal ratio must be >= 1 (peaks are denser than "
            f"baseline), got {ratio}"
        )
    require_positive("baseline_interval", baseline_interval)
    windows = []
    for peak, width in zip(peaks, widths):
        require_positive("peak width", float(width))
        lo = max(0.0, float(peak) - float(width) / 2.0)
        hi = min(24.0, float(peak) + float(width) / 2.0)
        if not lo < hi:
            raise ConfigurationError(
                f"diurnal peak at hour {peak} with width {width} lies "
                f"outside the epoch"
            )
        windows.append((lo, hi))
    profile = RushHourSpec(
        epoch_length=DAY,
        slot_count=int(slot_count),
        rush_windows=tuple(windows),
        rush_interval=baseline_interval / ratio,
        other_interval=baseline_interval,
        contact_length=require_positive("contact_length", contact_length),
    ).to_profile()
    return _scenario_from_profile(profile, t_on=t_on)


@scenario_factories.register("trace-driven")
def trace_driven_scenario(
    *,
    path: str,
    fmt: Optional[str] = None,
    time_scale: float = 1.0,
    repeat_every: Optional[float] = None,
    t_on: float = PAPER_T_ON,
) -> Scenario:
    """Contacts replayed from a trace file via the streaming reader.

    The file (``path``; native, ``.csv``, or ``.jsonl`` — see
    :mod:`repro.mobility.traces`) is read lazily at run time, clipped
    to the study horizon, and never fully materialized, so city-scale
    inputs are fine.  The slot profile backing the schedulers stays the
    paper's rush-hour expectation — a trace that contradicts it is
    exactly the robustness case this scenario exists to probe.
    """
    if not isinstance(path, str) or not path:
        raise ConfigurationError(
            "trace-driven requires a non-empty 'path' option"
        )
    source = TraceFileSource(
        path=path, fmt=fmt, time_scale=time_scale, repeat_every=repeat_every
    )
    base = _scenario_from_profile(RushHourSpec().to_profile(), t_on=t_on)
    return dataclasses.replace(base, contact_source=source)


@scenario_factories.register("mixed-fleet")
def mixed_fleet_scenario(
    *,
    classes: Sequence[dict] = _DEFAULT_FLEET,
    t_on: float = PAPER_T_ON,
) -> Scenario:
    """Heterogeneous fleet: per-class arrival processes, merged.

    ``classes`` is a sequence of ``{"name", "style", "mean_interval",
    "mean_length"[, "cv"]}`` mappings (styles: ``"normal"``,
    ``"poisson"``, ``"deterministic"``).  Each class draws from its own
    ``fleet.<name>`` RNG substreams, so the merged trace is seed-stable
    and independent of class order.  Schedulers still plan against the
    paper's rush-hour profile — the fleet is the ground truth they are
    judged on.
    """
    fleet = []
    for index, entry in enumerate(classes):
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"mixed-fleet classes[{index}] must be a mapping, "
                f"got {type(entry).__name__}"
            )
        unknown = sorted(
            set(entry) - {"name", "style", "mean_interval", "mean_length", "cv"}
        )
        if unknown:
            raise ConfigurationError(
                f"mixed-fleet classes[{index}] has unknown key(s) {unknown}"
            )
        missing = sorted(
            {"name", "style", "mean_interval", "mean_length"} - set(entry)
        )
        if missing:
            raise ConfigurationError(
                f"mixed-fleet classes[{index}] is missing key(s) {missing}"
            )
        fleet.append(FleetClass(**entry))
    source = MixedFleetSource(classes=tuple(fleet))
    base = _scenario_from_profile(RushHourSpec().to_profile(), t_on=t_on)
    return dataclasses.replace(base, contact_source=source)


@scenario_factories.register("flash-crowd")
def flash_crowd_scenario(
    *,
    crowd_start: float = 12.0,
    crowd_duration: float = 0.5,
    intensity: float = 60.0,
    baseline_interval: float = 3600.0,
    contact_length: float = 2.0,
    slot_count: int = 96,
    t_on: float = PAPER_T_ON,
) -> Scenario:
    """Adversarial burst: a quiet day with one extreme-density window.

    Outside the crowd the mean interval is ``baseline_interval``;
    inside the window starting at hour ``crowd_start`` and lasting
    ``crowd_duration`` hours it drops to ``baseline_interval /
    intensity``.  The default 96 slots (15 min) resolve bursts shorter
    than the paper's hour-long slots.  Crowd slots are marked rush.
    """
    require_positive("crowd_duration", crowd_duration)
    if not 0 <= crowd_start < 24:
        raise ConfigurationError(
            f"crowd_start must be an hour in [0, 24), got {crowd_start}"
        )
    if intensity < 1:
        raise ConfigurationError(
            f"intensity must be >= 1 (the crowd is denser than the "
            f"baseline), got {intensity}"
        )
    window = (float(crowd_start), min(24.0, float(crowd_start + crowd_duration)))
    profile = RushHourSpec(
        epoch_length=DAY,
        slot_count=int(slot_count),
        rush_windows=(window,),
        rush_interval=require_positive("baseline_interval", baseline_interval)
        / intensity,
        other_interval=baseline_interval,
        contact_length=require_positive("contact_length", contact_length),
    ).to_profile()
    return _scenario_from_profile(profile, t_on=t_on)


@scenario_factories.register("dead-zone")
def dead_zone_scenario(
    *,
    dead_windows: Sequence[Sequence[float]] = ((11.0, 13.0),),
    t_on: float = PAPER_T_ON,
) -> Scenario:
    """Adversarial holes: the paper's day with zero-contact windows.

    Slots whose midpoints fall inside any ``dead_windows`` entry (hour
    pairs) get an infinite mean interval — no contacts at all — while
    the rest of the profile, including the rush-hour markings the
    schedulers plan around, stays exactly the paper's.
    """
    windows = _hour_windows(dead_windows, "dead_windows")
    paper = RushHourSpec().to_profile()
    intervals = []
    for index in range(paper.slot_count):
        midpoint_hours = (index + 0.5) * paper.slot_length / HOUR
        dead = any(lo <= midpoint_hours < hi for lo, hi in windows)
        intervals.append(float("inf") if dead else paper.mean_intervals[index])
    profile = SlotProfile(
        paper.epoch_length,
        tuple(intervals),
        paper.mean_lengths,
        paper.rush_flags,
    )
    return _scenario_from_profile(profile, t_on=t_on)


@scenario_factories.register("churn")
def churn_scenario(
    *,
    rate_drift_cv: float = 0.3,
    rush_shift_per_epoch: float = 0.25,
    cv: float = 0.1,
    t_on: float = PAPER_T_ON,
) -> Scenario:
    """Adversarial drift: the paper's day that refuses to repeat.

    Every epoch, per-slot contact rates drift by a lognormal factor
    with coefficient of variation ``rate_drift_cv``, and the rush hours
    slide later by ``rush_shift_per_epoch`` hours — the synthetic
    generator supports both natively (see
    :class:`repro.mobility.synthetic.TraceConfig`).  Static plans rot;
    adaptive mechanisms get to prove they re-learn.
    """
    if rate_drift_cv < 0:
        raise ConfigurationError(
            f"rate_drift_cv must be >= 0, got {rate_drift_cv}"
        )
    base = paper_roadside_scenario(t_on=t_on)
    return dataclasses.replace(
        base,
        trace_config=TraceConfig(
            style=ArrivalStyle.NORMAL,
            cv=cv,
            epochs=base.epochs,
            rate_drift_cv=rate_drift_cv,
            rush_shift_per_epoch=rush_shift_per_epoch,
        ),
    )
