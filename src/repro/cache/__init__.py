"""Content-addressed cell cache: memoized study cells, resumable studies.

Every study shard is a pure function of its
:class:`~repro.experiments.runner.RunSpec`, so its outcome can be
stored under a content address and replayed instead of recomputed:

* :mod:`repro.cache.keys` — the canonical, versioned address
  (:func:`cache_key`): sha256 over the spec's byte-stable fingerprint,
  salted with :data:`CACHE_SCHEMA_VERSION`;
* :mod:`repro.cache.store` — :class:`CellCache`, the crash-safe
  on-disk store (atomic writes, checksummed entries, gc by size/age,
  corruption healed by re-execution with a loud
  :class:`CacheCorruptionWarning`);
* :mod:`repro.cache.transport` — :class:`CachedTransport`, the
  transport decorator that partitions shards into hits and misses,
  runs only misses on the inner transport, and writes each outcome
  back before yielding it — which is what makes crashed or cancelled
  studies resumable.

Wiring: ``StudySpec.execution`` (``cache`` / ``cache_options``), the
CLI (``run --cache DIR``, ``repro cache stats|gc|verify``), and the
study service (``serve --cache DIR``).  The headline invariant is
byte-identity: a warm-cache artifact equals the cold-run artifact
exactly.
"""

from .keys import CACHE_SCHEMA_VERSION, cache_key, cell_fingerprint
from .store import (
    CACHE_OPTION_NAMES,
    CacheCorruptionWarning,
    CellCache,
    decode_result,
    encode_result,
    validate_cache_options,
)
from .transport import CachedTransport, wrap_with_cache

__all__ = [
    "CACHE_OPTION_NAMES",
    "CACHE_SCHEMA_VERSION",
    "CacheCorruptionWarning",
    "CachedTransport",
    "CellCache",
    "cache_key",
    "cell_fingerprint",
    "decode_result",
    "encode_result",
    "validate_cache_options",
    "wrap_with_cache",
]
