"""Canonical, versioned content addresses for study cells.

Every shard of a study is a pure function of its
:class:`~repro.experiments.runner.RunSpec` — the scenario (seed and
Φmax budget included), the mechanism name, and the engine name.  That
purity is pinned by the jobs=1/N/shuffled byte-identity tests, and it
is exactly what makes a cell outcome memoizable: two specs with the
same fingerprint *must* produce byte-identical results, so a cached
outcome can stand in for a re-execution.

The address is ``sha256`` over a byte-stable canonical encoding of the
fingerprint (:func:`cell_fingerprint`), salted with
:data:`CACHE_SCHEMA_VERSION`:

* **Stable** — the encoding recurses over frozen dataclasses, enums,
  tuples, and mappings with sorted keys and compact separators, so the
  bytes never depend on insertion order, process, or host.
* **Exact** — floats are encoded via :func:`repr` (Python's shortest
  round-trip form), which distinguishes every distinct double and
  survives non-finite values such as the ``inf`` gaps in
  :class:`~repro.mobility.profiles.SlotProfile.mean_intervals` that
  strict JSON cannot carry.
* **Versioned** — bump :data:`CACHE_SCHEMA_VERSION` whenever the
  *meaning* of an outcome changes (engine semantics, metrics fields,
  seeding): every old entry then misses by construction, and stale
  results can never leak into a new-code run.

Two deliberate exclusions:

* ``RunSpec.replicate`` is bookkeeping for aggregation and does not
  affect execution (the replicate's seed already lives inside the
  scenario), so it is left out of the fingerprint — replicate 2 of one
  study can hit an outcome computed as replicate 0 of another.
* A spec carrying an in-process ``factory`` override is **not
  cacheable** (:func:`cache_key` returns None): the factory is
  arbitrary code with no canonical byte form, so such cells are always
  executed and never stored.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Optional

from ..experiments.runner import RunSpec

__all__ = ["CACHE_SCHEMA_VERSION", "cell_fingerprint", "cache_key"]

#: Outcome-semantics version, hashed into every cell address.  Bump it
#: whenever a change alters what a cached outcome *means* — engine
#: behaviour, metrics fields, seed derivation — so every existing entry
#: becomes unreachable instead of silently wrong.
#: v2: named-scenario fingerprints (``RunSpec.scenario_ref``) and the
#: ``Scenario.contact_source`` field.
CACHE_SCHEMA_VERSION = 2


def _canonical(value: Any) -> Any:
    """*value* as a JSON-clean structure with a byte-stable encoding.

    Frozen dataclasses become ``{"__kind__": <type>, <field>: ...}``
    records, enums become ``["__enum__", <type>, <member>]``, floats
    become ``["__float__", repr(value)]`` (exact and non-finite-safe),
    and tuples become lists.  Anything else that is not a JSON scalar
    raises :class:`TypeError` — the caller treats that as "not
    cacheable" rather than guessing an encoding.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["__float__", repr(value)]
    if isinstance(value, enum.Enum):
        return ["__enum__", type(value).__name__, value.name]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        record: Dict[str, Any] = {"__kind__": type(value).__name__}
        for field in dataclasses.fields(value):
            record[field.name] = _canonical(getattr(value, field.name))
        return record
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    raise TypeError(
        f"no canonical cache encoding for {type(value).__name__!r}"
    )


def cell_fingerprint(spec: RunSpec) -> Optional[Dict[str, Any]]:
    """The identity of *spec*'s outcome, or None when not cacheable.

    Covers everything execution reads — the scenario (fingerprinted by
    registry name + canonical options + the per-cell budget, target,
    epochs, and seed when ``spec.scenario_ref`` names it; by the full
    materialized object otherwise), the mechanism name, and the engine
    name — plus the :data:`CACHE_SCHEMA_VERSION` salt.  Excludes ``replicate``
    (aggregation bookkeeping, never consumed by execution) and refuses
    specs with an in-process ``factory`` override (arbitrary code has
    no canonical byte form).
    """
    if spec.factory is not None:
        return None
    if spec.scenario_ref is not None:
        # A registry-named scenario: the (name, canonical options) pair
        # plus the study overrides uniquely determine the materialized
        # Scenario, so hash that compact identity instead of the full
        # materialized object — trace-driven and mixed-fleet workloads
        # then fingerprint by reference, not by megabytes of contacts.
        scenario: Any = {
            "ref": {
                "name": spec.scenario_ref.name,
                "options": _canonical(dict(spec.scenario_ref.options)),
            },
            "zeta_target": _canonical(spec.scenario.zeta_target),
            "phi_max": _canonical(spec.scenario.phi_max),
            "epochs": spec.scenario.epochs,
            "seed": spec.scenario.seed,
        }
    else:
        try:
            scenario = _canonical(spec.scenario)
        except TypeError:
            return None  # an unencodable scenario field: execute, don't cache
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "mechanism": spec.mechanism,
        "engine": spec.engine,
        "scenario": scenario,
    }


def cache_key(spec: RunSpec) -> Optional[str]:
    """The content address of *spec*'s outcome, or None when not cacheable.

    ``sha256`` (via :mod:`hashlib` — builtin ``hash()`` is salted per
    process) over the compact, key-sorted JSON encoding of
    :func:`cell_fingerprint`.  Equal fingerprints give equal keys on
    every host; any semantic change is pushed through
    :data:`CACHE_SCHEMA_VERSION` and lands on a fresh address.
    """
    fingerprint = cell_fingerprint(spec)
    if fingerprint is None:
        return None
    encoded = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
