"""Crash-safe on-disk store for content-addressed cell outcomes.

Layout (one directory per cache)::

    cache_dir/
      meta.json            # format marker + schema version at creation
      cells/
        <sha256 key>.json  # one entry per cached cell outcome

Every entry is a self-contained JSON document carrying the cache
format marker, the :data:`~repro.cache.keys.CACHE_SCHEMA_VERSION` it
was written under, its own key, the outcome payload, and a sha256
checksum of the payload.  Writes go through the same-directory
temp-file-plus-:func:`os.replace` idiom the study store and the file
queue use, so a crash mid-write can never leave a half-entry under a
live key — concurrent writers racing on one key each write a complete
file and the last rename wins (both wrote the same bytes: the key *is*
the content address).

Corruption is detected on read — unparsable JSON, a key or checksum
mismatch, a missing field — and **healed by re-execution**: the entry
is deleted, a loud :class:`CacheCorruptionWarning` names the file and
the reason, and the caller simply recomputes the cell.  A corrupt
cache can cost time, never correctness.

The outcome payload is the per-epoch
:class:`~repro.experiments.metrics.EpochMetrics` series — everything
grid assembly, agreement deltas, and progress lines read from a cell's
:class:`~repro.experiments.runner.RunResult`.  Python's JSON float
round-trip is exact (shortest-repr), so a decoded outcome reproduces
the cold-run artifact byte for byte.  The rich in-memory objects
(scheduler, node, trace) intentionally do not round-trip, exactly as
in study artifacts; decoded results carry ``scheduler=None`` /
``trace=None`` and ``from_cache=True``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..experiments.metrics import EpochMetrics, RunMetrics
from ..experiments.runner import RunResult, RunSpec
from .keys import CACHE_SCHEMA_VERSION

__all__ = [
    "CACHE_OPTION_NAMES",
    "CacheCorruptionWarning",
    "CellCache",
    "decode_result",
    "encode_result",
    "validate_cache_options",
]

#: Marker naming the on-disk format, in ``meta.json`` and every entry.
CACHE_FORMAT = "repro-cell-cache-v1"

#: The keys ``execution.cache_options`` (and ``CellCache``) accept.
CACHE_OPTION_NAMES = ("max_age_days", "max_bytes", "readonly")


class CacheCorruptionWarning(UserWarning):
    """A cache entry failed validation and was discarded.

    Emitted loudly (never swallowed) whenever an entry cannot be
    parsed, carries the wrong key, or fails its checksum: the entry is
    deleted and the cell re-executes, so the run stays correct — this
    warning is how the operator learns the cache directory is unwell.
    """


def encode_result(result: RunResult) -> Dict[str, Any]:
    """*result* as a JSON-clean outcome payload (the cached bytes).

    The payload is the full per-epoch metrics series — the complete
    input to grid assembly, agreement deltas, and progress lines.  All
    fields are ints and finite floats, so strict JSON round-trips them
    exactly.
    """
    return {
        "epochs": [dataclasses.asdict(epoch) for epoch in result.metrics.epochs],
    }


def decode_result(spec: RunSpec, payload: Dict[str, Any]) -> RunResult:
    """Rebuild *spec*'s :class:`RunResult` from a cached *payload*.

    The scenario comes from the spec being executed (it hashed into
    the key, so it is identical to the one that produced the payload);
    the rich objects (scheduler, node, trace) do not round-trip, as in
    study artifacts.  A payload whose shape does not match the current
    :class:`~repro.experiments.metrics.EpochMetrics` raises
    ``TypeError``/``KeyError`` — callers treat that as corruption.
    """
    epochs = [EpochMetrics(**epoch) for epoch in payload["epochs"]]
    return RunResult(
        scenario=spec.scenario,
        scheduler=None,
        metrics=RunMetrics(epochs=epochs),
        node=None,
        trace=None,
        from_cache=True,
    )


def validate_cache_options(
    options: Any, *, where: str = "execution.cache_options"
) -> Dict[str, Any]:
    """Strictly validate cache options, returning a key-sorted dict.

    Unknown keys and ill-typed values raise
    :class:`~repro.errors.ConfigurationError` naming *where* — the same
    fail-fast contract as transport options, so a typo in a study file
    or on the CLI dies at load time, not inside a run.
    """
    if options is None:
        return {}
    if not isinstance(options, dict):
        raise ConfigurationError(
            f"{where} must be a mapping, got {options!r}"
        )
    for key in options:
        if key not in CACHE_OPTION_NAMES:
            raise ConfigurationError(
                f"unknown {where} key {key!r}; known: "
                f"{sorted(CACHE_OPTION_NAMES)}"
            )
    validated: Dict[str, Any] = {}
    for key in sorted(options):
        value = options[key]
        if key == "readonly":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"{where}.readonly must be a bool, got {value!r}"
                )
        elif key == "max_bytes":
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigurationError(
                    f"{where}.max_bytes must be an int >= 1, got {value!r}"
                )
        elif key == "max_age_days":
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value <= 0
            ):
                raise ConfigurationError(
                    f"{where}.max_age_days must be a number > 0, got {value!r}"
                )
        validated[key] = value
    return validated


def _payload_checksum(payload: Dict[str, Any]) -> str:
    """sha256 over the compact, key-sorted JSON encoding of *payload*."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* via a same-directory temp file + rename.

    ``os.replace`` is atomic within one filesystem, so readers — and
    concurrent writers racing on the same entry — only ever observe a
    complete file or no file, never a torn write.
    """
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".cache-", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_path, path)
    # lint: allow[broad-except] -- cleanup-and-reraise: the temp file
    # must be removed even on KeyboardInterrupt, then the raise
    # propagates the original failure untouched
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


class CellCache:
    """A content-addressed, crash-safe store of cell outcomes.

    ``get``/``put`` are the hot path (used by
    :class:`~repro.cache.transport.CachedTransport`); ``stats``,
    ``gc``, and ``verify`` back the ``repro cache`` CLI.  When
    *max_bytes* or *max_age_days* is configured the same bounds are
    applied opportunistically at open time, so a long-lived cache
    directory referenced from a study file stays within its budget
    without a separate cron.

    A *readonly* cache serves hits but silently skips writes — for
    sharing one warm directory across CI jobs that must not grow it.
    """

    def __init__(
        self,
        root: str,
        *,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
        readonly: bool = False,
    ) -> None:
        """Open (and create, unless readonly) the cache at *root*."""
        validate_cache_options(
            {
                key: value
                for key, value in (
                    ("max_bytes", max_bytes),
                    ("max_age_days", max_age_days),
                    ("readonly", readonly),
                )
                if value is not None
            }
        )
        self.root = str(root)
        self.readonly = readonly
        self.max_bytes = max_bytes
        self.max_age_days = max_age_days
        self._cells_dir = os.path.join(self.root, "cells")
        if os.path.isfile(self.root):
            raise ConfigurationError(
                f"cache directory {self.root!r} is an existing file"
            )
        if not readonly:
            os.makedirs(self._cells_dir, exist_ok=True)
            meta_path = os.path.join(self.root, "meta.json")
            if not os.path.exists(meta_path):
                _atomic_write_text(
                    meta_path,
                    json.dumps(
                        {
                            "format": CACHE_FORMAT,
                            "schema_version": CACHE_SCHEMA_VERSION,
                        },
                        indent=2,
                        sort_keys=True,
                    )
                    + "\n",
                )
            if max_bytes is not None or max_age_days is not None:
                self.gc(max_bytes=max_bytes, max_age_days=max_age_days)

    # ------------------------------------------------------------------
    # hot path
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The outcome payload stored under *key*, or None on a miss.

        Any validation failure — unreadable file, bad JSON, key or
        checksum mismatch, missing fields — deletes the entry, emits a
        :class:`CacheCorruptionWarning`, and reports a miss, so the
        caller re-executes the cell (the heal-by-recompute contract).
        """
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._discard(path, f"unreadable ({exc})")
            return None
        try:
            entry = json.loads(text)
            if entry["format"] != CACHE_FORMAT:
                raise ValueError(f"format marker {entry['format']!r}")
            if entry["key"] != key:
                raise ValueError(f"entry says key {entry['key']!r}")
            payload = entry["payload"]
            if entry["checksum"] != _payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            self._discard(path, str(exc))
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store *payload* under *key* (atomic; no-op when readonly).

        Idempotent by construction: the key is the content address, so
        every writer racing on one key writes identical bytes and the
        last atomic rename wins harmlessly.
        """
        if self.readonly:
            return
        entry = {
            "format": CACHE_FORMAT,
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
            "checksum": _payload_checksum(payload),
        }
        _atomic_write_text(
            self._entry_path(key),
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n",
        )

    def invalidate(self, key: str) -> None:
        """Drop the entry under *key*, if present."""
        try:
            os.unlink(self._entry_path(key))
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # maintenance (the `repro cache` CLI)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Entry count, total bytes, and identity of this cache."""
        entries = list(self._scan())
        return {
            "root": self.root,
            "format": CACHE_FORMAT,
            "schema_version": CACHE_SCHEMA_VERSION,
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
        }

    def gc(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evict entries by age and total size, oldest first.

        Entries older than *max_age_days* (by file mtime — a wall-clock
        read, legitimate here: eviction policy never feeds simulation
        results) are removed first; if the survivors still exceed
        *max_bytes*, the oldest are evicted until the total fits.
        Returns removal/retention counts and byte totals.
        """
        entries = sorted(self._scan(), key=lambda item: item[2])  # oldest first
        removed = 0
        removed_bytes = 0
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            survivors = []
            for path, size, mtime in entries:
                if mtime < cutoff:
                    self._remove(path)
                    removed += 1
                    removed_bytes += size
                else:
                    survivors.append((path, size, mtime))
            entries = survivors
        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            index = 0
            while total > max_bytes and index < len(entries):
                path, size, _ = entries[index]
                self._remove(path)
                removed += 1
                removed_bytes += size
                total -= size
                index += 1
            entries = entries[index:]
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "kept": len(entries),
            "kept_bytes": sum(size for _, size, _ in entries),
        }

    def verify(self) -> Dict[str, Any]:
        """Re-validate every entry, discarding (and counting) corrupt ones.

        Runs each entry through the same checks as :meth:`get` — parse,
        format marker, key, checksum — so a bit-flipped or truncated
        file is found *before* a study trusts it.  Corrupt entries are
        deleted (with the usual loud warning); the next run re-executes
        those cells.
        """
        checked = 0
        corrupt = 0
        for path, _, _ in list(self._scan()):
            checked += 1
            key = os.path.splitext(os.path.basename(path))[0]
            if self.get(key) is None:
                corrupt += 1
        return {"entries": checked, "ok": checked - corrupt, "corrupt_removed": corrupt}

    def keys(self) -> List[str]:
        """Every key currently stored, sorted."""
        return sorted(
            os.path.splitext(os.path.basename(path))[0]
            for path, _, _ in self._scan()
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self._cells_dir, f"{key}.json")

    def _scan(self) -> Iterator[Tuple[str, int, float]]:
        """Yield ``(path, size, mtime)`` for every entry file present."""
        try:
            names = os.listdir(self._cells_dir)
        except FileNotFoundError:
            return
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._cells_dir, name)
            try:
                status = os.stat(path)
            except OSError:
                continue  # raced with a concurrent gc/invalidate
            yield path, status.st_size, status.st_mtime

    def _discard(self, path: str, reason: str) -> None:
        """Delete a bad entry and warn loudly (heal-by-recompute)."""
        warnings.warn(
            f"cell cache entry {os.path.basename(path)!r} in {self.root!r} "
            f"is corrupt ({reason}); discarding it — the cell will "
            f"re-execute",
            CacheCorruptionWarning,
            stacklevel=3,
        )
        self._remove(path)

    def _remove(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass  # already gone (concurrent writer/gc) — that is fine

    def __repr__(self) -> str:
        return f"CellCache({self.root!r})"
