"""The caching transport decorator: hits from disk, misses downstream.

:class:`CachedTransport` wraps any registered transport ("serial",
"pool", "file-queue", or a runtime registration) and partitions each
shard list into cache hits and misses: hits are decoded straight from
the :class:`~repro.cache.store.CellCache` and yielded first, misses
run over the inner transport with their indices remapped back to the
caller's order — so reassembly-by-index (sharding-contract rule 3)
sees exactly the stream it would have seen from the inner transport
alone, and the assembled artifact is byte-identical to a cold run.

Two properties make crashed or cancelled studies resumable:

* **Store-before-yield.**  Every computed miss is written to the cache
  *before* its ``(index, result)`` pair is yielded.  Progress
  callbacks — including the service scheduler's cancellation check —
  fire after the yield, so by the time a run aborts, every completed
  cell is already on disk; re-running the same study computes only the
  cells that never finished.
* **File-queue warming.**  When the inner transport ingests externally
  completed work (the file queue's ``done/`` records), it feeds each
  outcome through the duck-typed ``outcome_sink`` hook as it drains —
  before queue cleanup deletes the record — so outcomes computed by
  other hosts land in the cache even if the coordinating process dies
  before consuming them.

The decorator only engages for the study shard function
(:func:`~repro.experiments.runner.execute_run_spec` over cacheable
:class:`~repro.experiments.runner.RunSpec` shards); any other workload
— e.g. a network study's per-node fan-out — passes through to the
inner transport untouched.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..experiments.parallel import SerialExecutor
from ..experiments.runner import RunSpec, execute_run_spec
from .keys import cache_key
from .store import CellCache, decode_result, encode_result, validate_cache_options

__all__ = ["CachedTransport", "wrap_with_cache"]


class CachedTransport:
    """A transport decorator memoizing cell outcomes in a :class:`CellCache`.

    Implements the full streaming transport contract (``map``/``imap``
    with index reassembly) and forwards the attributes the study layer
    reads — ``transport_name``, ``label``, ``last_map_parallel``,
    ``jobs`` — to the wrapped transport, so wrapping is invisible to
    everything except wall-clock time.  After each ``map``/``imap``,
    :attr:`last_hits` / :attr:`last_computed` report the partition.
    """

    def __init__(self, inner: Any, cache: CellCache) -> None:
        """Wrap transport *inner* (any Executor) with *cache*."""
        self.inner = inner
        self.cache = cache
        #: Cells served from the cache by the most recent map/imap.
        self.last_hits = 0
        #: Cells executed by the inner transport most recently.
        self.last_computed = 0

    # ------------------------------------------------------------------
    # forwarded transport surface
    # ------------------------------------------------------------------
    @property
    def transport_name(self) -> str:
        """The wrapped transport's registry name (wrapping is invisible)."""
        return getattr(self.inner, "transport_name", type(self.inner).__name__)

    @property
    def label(self) -> Optional[str]:
        """The wrapped transport's workload label (study name tagging)."""
        return getattr(self.inner, "label", None)

    @label.setter
    def label(self, value: Optional[str]) -> None:
        self.inner.label = value

    @property
    def last_map_parallel(self) -> bool:
        """Whether the inner transport's last run actually fanned out."""
        return getattr(self.inner, "last_map_parallel", False)

    @property
    def jobs(self) -> int:
        """The wrapped transport's worker count."""
        return getattr(self.inner, "jobs", 1)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Sequence) -> List:
        """Apply *fn* to every item; results align with input order."""
        items = list(items)
        results: List[Any] = [None] * len(items)
        for index, result in self.imap(fn, items):
            results[index] = result
        return results

    def imap(self, fn: Callable, items: Sequence) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` pairs: hits first, then computed misses.

        Only study shards are memoized: when *fn* is not
        :func:`execute_run_spec` (or a shard is not a cacheable
        :class:`RunSpec`), the work goes to the inner transport
        verbatim.  Every miss is stored before its pair is yielded
        (resumability) and the inner transport's ``outcome_sink`` hook
        is armed for the duration so externally ingested outcomes warm
        the cache too.
        """
        items = list(items)
        self.last_hits = 0
        self.last_computed = 0
        if fn is not execute_run_spec:
            yield from self._inner_imap(fn, items)
            return
        misses: List[Tuple[int, Any, Optional[str]]] = []
        for index, item in enumerate(items):
            result = self._lookup(item)
            if result is not None:
                self.last_hits += 1
                yield index, result
            else:
                key = cache_key(item) if isinstance(item, RunSpec) else None
                misses.append((index, item, key))
        if not misses:
            return
        keys_by_position = [key for _, _, key in misses]

        def sink(position: int, value: Any) -> None:
            """Warm the cache from externally ingested outcomes."""
            key = keys_by_position[position]
            if key is not None:
                self.cache.put(key, encode_result(value))

        self.inner.outcome_sink = sink
        try:
            pairs = self._inner_imap(execute_run_spec, [item for _, item, _ in misses])
            for position, value in pairs:
                index, _, key = misses[position]
                if key is not None:
                    self.cache.put(key, encode_result(value))
                self.last_computed += 1
                yield index, value
        finally:
            self.inner.outcome_sink = None

    def _lookup(self, item: Any) -> Optional[Any]:
        """A decoded cached result for *item*, or None on any miss.

        A payload that no longer decodes (metrics schema drift inside
        one :data:`~repro.cache.keys.CACHE_SCHEMA_VERSION` — a bug, but
        a survivable one) is treated exactly like corruption: the entry
        is invalidated and the cell recomputes.
        """
        if not isinstance(item, RunSpec):
            return None
        key = cache_key(item)
        if key is None:
            return None
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            return decode_result(item, payload)
        except (KeyError, TypeError, ValueError):
            self.cache.invalidate(key)
            return None

    def _inner_imap(self, fn: Callable, items: Sequence) -> Iterator[Tuple[int, Any]]:
        """The inner transport's stream, via ``imap`` or blocking ``map``."""
        imap = getattr(self.inner, "imap", None)
        if imap is not None:
            yield from imap(fn, items)
        else:
            yield from enumerate(self.inner.map(fn, items))

    def __repr__(self) -> str:
        return f"CachedTransport({self.inner!r}, {self.cache!r})"


def wrap_with_cache(
    executor: Optional[Any],
    cache_dir: str,
    options: Optional[dict] = None,
) -> CachedTransport:
    """Decorate *executor* with a :class:`CellCache` at *cache_dir*.

    The single construction path shared by
    :meth:`~repro.experiments.spec.StudySpec.build_transport` and the
    service scheduler: *options* are validated strictly
    (:func:`~repro.cache.store.validate_cache_options`), and a None
    *executor* (the historical plain-serial path) is wrapped around a
    :class:`~repro.experiments.parallel.SerialExecutor` so the caching
    layer always has a downstream transport.
    """
    validated = validate_cache_options(options)
    cache = CellCache(cache_dir, **validated)
    return CachedTransport(
        executor if executor is not None else SerialExecutor(), cache
    )
