"""Time and energy unit helpers.

All simulation times in this library are plain ``float`` **seconds**.
This module centralizes the named constants and small conversion helpers
so that scenario code reads naturally (``2 * HOUR`` instead of ``7200``)
and unit mistakes are easy to audit.

Energy is tracked two ways, matching the paper:

* *radio-on seconds* — the paper's Φ metric ("the time that the radio is
  turned on during an epoch");
* *joules* — derived from per-state current draws and supply voltage, see
  :mod:`repro.radio.energy`.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: One second, the base unit.
SECOND: float = 1.0
#: One millisecond in seconds.
MILLISECOND: float = 1e-3
#: One microsecond in seconds.
MICROSECOND: float = 1e-6
#: One minute in seconds.
MINUTE: float = 60.0
#: One hour in seconds.
HOUR: float = 3600.0
#: One day in seconds.  The paper's default epoch (``Tepoch``).
DAY: float = 24 * HOUR
#: One week in seconds.  The paper simulates two of these.
WEEK: float = 7 * DAY

#: Numerical tolerance used for time comparisons throughout the library.
#: One nanosecond is far below any physical timescale in the model
#: (radio on-periods are tens of milliseconds).
TIME_EPSILON: float = 1e-9


def hours(value: float) -> float:
    """Return *value* hours expressed in seconds."""
    return value * HOUR


def minutes(value: float) -> float:
    """Return *value* minutes expressed in seconds."""
    return value * MINUTE


def milliseconds(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return value * MILLISECOND


def require_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite number greater than zero.

    Returns the value so it can be used inline in constructors::

        self.t_on = require_positive("t_on", t_on)
    """
    if not _is_finite_number(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def require_non_negative(name: str, value: float) -> float:
    """Validate that *value* is a finite number greater than or equal to zero."""
    if not _is_finite_number(value) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def require_fraction(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not _is_finite_number(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_probability(name: str, value: float) -> float:
    """Alias of :func:`require_fraction` that reads better for probabilities."""
    return require_fraction(name, value)


def _is_finite_number(value: object) -> bool:
    """Return True when *value* is an int/float that is neither NaN nor infinite."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    return value == value and value not in (float("inf"), float("-inf"))


def format_duration(seconds: float) -> str:
    """Render a duration as a compact human-readable string.

    >>> format_duration(7200)
    '2h00m'
    >>> format_duration(93.5)
    '1m33.5s'
    >>> format_duration(0.02)
    '20.0ms'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        whole_minutes = int(seconds // MINUTE)
        rest = seconds - whole_minutes * MINUTE
        return f"{whole_minutes}m{rest:04.1f}s"
    whole_hours = int(seconds // HOUR)
    rest_minutes = int(round((seconds - whole_hours * HOUR) / MINUTE))
    if rest_minutes == 60:
        whole_hours += 1
        rest_minutes = 0
    return f"{whole_hours}h{rest_minutes:02d}m"
