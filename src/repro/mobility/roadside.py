"""Roadside scenario geometry.

The paper's evaluation scenario is a sensor node deployed beside a road;
contacts are vehicle (or pedestrian) passes.  The contact length is then
determined by geometry: a mobile node crossing the coverage disk of
radius R at speed v along a chord at perpendicular distance y from the
sensor stays in range for ``2 * sqrt(R^2 - y^2) / v`` seconds.

This module derives the paper's scenario constants from physical
parameters — e.g. Tcontact = 2 s corresponds to a vehicle at 50 km/h
crossing a ~14 m-radius disk through the middle — and provides a
geometric contact-length sampler for ablations where fixed lengths are
too idealized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..units import require_positive


@dataclass(frozen=True)
class RoadsideScenario:
    """A sensor node beside a straight road.

    Attributes:
        radio_range: communication radius R in metres (both node classes
            use the same commodity radio per the paper's model).
        road_offset: perpendicular distance from the sensor to the road
            centreline, metres (must be < radio_range for contacts to
            exist).
        speed: mobile node speed in metres/second.
        lane_width: vehicles are uniformly offset within ±lane_width/2
            of the centreline, which spreads contact lengths.
    """

    radio_range: float = 14.0
    road_offset: float = 0.0
    speed: float = 13.9  # ~50 km/h
    lane_width: float = 0.0

    def __post_init__(self) -> None:
        require_positive("radio_range", self.radio_range)
        require_positive("speed", self.speed)
        if self.road_offset < 0 or self.lane_width < 0:
            raise ConfigurationError("road_offset and lane_width must be >= 0")
        if self.road_offset + self.lane_width / 2 >= self.radio_range:
            raise ConfigurationError(
                "road must pass inside the coverage disk "
                f"(offset {self.road_offset} + half lane {self.lane_width / 2} "
                f">= range {self.radio_range})"
            )

    # ------------------------------------------------------------------
    # deterministic geometry
    # ------------------------------------------------------------------
    def chord_length(self, offset: float) -> float:
        """Length of the in-range chord at perpendicular *offset* metres."""
        if abs(offset) >= self.radio_range:
            return 0.0
        return 2.0 * math.sqrt(self.radio_range**2 - offset**2)

    def contact_length(self, offset: float = None) -> float:
        """Dwell time for a pass at *offset* (default: road centreline)."""
        actual = self.road_offset if offset is None else offset
        return self.chord_length(actual) / self.speed

    @property
    def max_contact_length(self) -> float:
        """Dwell time through the disk centre — the upper bound."""
        return 2.0 * self.radio_range / self.speed

    def sample_contact_length(self, streams: RandomStreams) -> float:
        """Draw a contact length for a vehicle at a random lane offset."""
        if self.lane_width == 0:
            return self.contact_length()
        rng = streams.stream("roadside.lane_offset")
        offset = self.road_offset + float(
            rng.uniform(-self.lane_width / 2, self.lane_width / 2)
        )
        length = self.contact_length(offset)
        # Guard against degenerate grazing passes.
        return max(length, 1e-3)

    # ------------------------------------------------------------------
    # calibration helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_contact_length(
        cls, contact_length: float, *, speed: float = 13.9
    ) -> "RoadsideScenario":
        """Scenario whose centreline pass lasts exactly *contact_length*.

        Used to express the paper's ``Tcontact = 2 s`` as geometry:
        R = v * Tcontact / 2.
        """
        require_positive("contact_length", contact_length)
        radius = speed * contact_length / 2.0
        return cls(radio_range=radius, road_offset=0.0, speed=speed)
