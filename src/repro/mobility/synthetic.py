"""Synthetic multi-day contact-trace generation.

Combines a :class:`~repro.mobility.profiles.SlotProfile` (the temporal
rush-hour structure) with an arrival style (deterministic / normal /
Poisson) to produce multi-epoch :class:`~repro.mobility.contact.ContactTrace`
objects.  This is the stand-in for both the paper's COOJA scenario
script and for real CRAWDAD traces; it also supports the dynamics the
paper discusses in §VII-B (seasonal drift of rush hours, day-to-day rate
variation) so the adaptive extensions can be exercised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..units import require_non_negative
from .contact import Contact, ContactTrace
from .profiles import SlotProfile


class ArrivalStyle(enum.Enum):
    """How inter-contact gaps and lengths are drawn within a slot."""

    #: Fixed interval and length (the paper's analysis setting).
    DETERMINISTIC = "deterministic"
    #: Normal with cv = std/mean (the paper's simulation uses cv = 0.1).
    NORMAL = "normal"
    #: Exponential gaps and lengths (ablations).
    POISSON = "poisson"


@dataclass(frozen=True)
class TraceConfig:
    """Parameters for synthetic trace generation.

    Attributes:
        style: jitter model for gaps and lengths.
        cv: coefficient of variation for ``NORMAL`` style.
        epochs: number of epochs (days) to generate.
        rate_drift_cv: day-to-day multiplicative jitter on slot rates
            (0 disables); models "the amount of a time-slot's contact
            capacity varies a lot in different epoches" (§VII-B).
        rush_shift_per_epoch: hours by which the whole profile shifts
            later each epoch; models seasonal rush-hour drift (§VII-B).
    """

    style: ArrivalStyle = ArrivalStyle.NORMAL
    cv: float = 0.1
    epochs: int = 14
    rate_drift_cv: float = 0.0
    rush_shift_per_epoch: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        require_non_negative("cv", self.cv)
        require_non_negative("rate_drift_cv", self.rate_drift_cv)


class SyntheticTraceGenerator:
    """Generates slot-structured contact traces.

    Within each slot, contacts arrive with the slot's mean interval,
    jittered per the configured style; contact lengths use the slot's
    mean length.  The generator preserves the sparse-network assumption
    (no overlapping contacts) and carries arrival phase across slot
    boundaries so slot edges do not synchronize arrivals.
    """

    def __init__(
        self,
        profile: SlotProfile,
        config: TraceConfig = TraceConfig(),
        *,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.profile = profile
        self.config = config
        self.streams = streams if streams is not None else RandomStreams(0)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, *, mobile_id_prefix: str = "mobile") -> ContactTrace:
        """Generate ``config.epochs`` epochs of contacts."""
        contacts: List[Contact] = []
        serial = 0
        for epoch_index in range(self.config.epochs):
            epoch_offset = epoch_index * self.profile.epoch_length
            epoch_contacts = self._generate_epoch(epoch_index)
            for start, length in epoch_contacts:
                serial += 1
                contacts.append(
                    Contact(
                        epoch_offset + start,
                        length,
                        f"{mobile_id_prefix}-{serial}",
                    )
                )
        return ContactTrace(contacts)

    def generate_epoch_trace(self, epoch_index: int = 0) -> ContactTrace:
        """Generate a single epoch rebased at time 0."""
        pairs = self._generate_epoch(epoch_index)
        return ContactTrace([Contact(start, length) for start, length in pairs])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _generate_epoch(self, epoch_index: int) -> List[Tuple[float, float]]:
        profile = self.profile
        shift_seconds = self.config.rush_shift_per_epoch * 3600.0 * epoch_index
        pairs: List[Tuple[float, float]] = []
        cursor = 0.0  # next candidate arrival time within the epoch
        previous_end = 0.0
        previous_interval: Optional[float] = None
        # Walk slots in order; each slot contributes arrivals at its rate.
        for slot in range(profile.slot_count):
            slot_start, slot_end = profile.slot_bounds(slot)
            # The *effective* statistics for this wall-clock slot come
            # from the profile slot that has drifted into it.
            source_slot = profile.slot_index(slot_start + profile.slot_length / 2 - shift_seconds)
            interval = profile.mean_intervals[source_slot]
            length = profile.mean_lengths[source_slot]
            if interval == float("inf"):
                cursor = max(cursor, slot_end)
                previous_interval = None
                continue
            interval = interval / self._rate_multiplier(epoch_index, slot)
            if cursor <= slot_start or previous_interval is None:
                cursor = max(cursor, slot_start)
                if cursor == slot_start:
                    cursor += self._draw_interval(interval)
            elif previous_interval != interval:
                # Rate transition: the wait already in progress was drawn
                # at the previous slot's rate; rescale its remainder so
                # the arrival process reacts to the new rate immediately
                # (otherwise a 30-min off-peak gap would swallow the
                # first rush-hour contacts).
                cursor = slot_start + (cursor - slot_start) * (
                    interval / previous_interval
                )
            previous_interval = interval
            while cursor < slot_end:
                begin = max(cursor, previous_end)
                if begin >= slot_end:
                    break
                contact_length = self._draw_length(length)
                pairs.append((begin, contact_length))
                previous_end = begin + contact_length
                cursor += self._draw_interval(interval)
        return pairs

    def _rate_multiplier(self, epoch_index: int, slot: int) -> float:
        if self.config.rate_drift_cv == 0.0:
            return 1.0
        rng = self.streams.stream(f"drift.e{epoch_index}.s{slot}")
        multiplier = float(rng.normal(1.0, self.config.rate_drift_cv))
        return max(0.1, multiplier)

    def _draw_interval(self, mean: float) -> float:
        style = self.config.style
        if style is ArrivalStyle.DETERMINISTIC:
            return mean
        if style is ArrivalStyle.NORMAL:
            return self.streams.normal_positive(
                "synthetic.interval", mean, mean * self.config.cv
            )
        rng = self.streams.stream("synthetic.interval.exp")
        return float(rng.exponential(mean))

    def _draw_length(self, mean: float) -> float:
        style = self.config.style
        if style is ArrivalStyle.DETERMINISTIC:
            return mean
        if style is ArrivalStyle.NORMAL:
            return self.streams.normal_positive(
                "synthetic.length", mean, mean * self.config.cv
            )
        rng = self.streams.stream("synthetic.length.exp")
        return max(1e-6, float(rng.exponential(mean)))
