"""Contact-trace file format (CRAWDAD-style) with reader and writer.

Real contact traces (e.g. CRAWDAD haggle/imote) are distributed as
whitespace-separated columns of contact start/end times.  We use a
compatible plain-text format so that published traces can be converted
with a one-line awk script and loaded here:

.. code-block:: text

    # repro-contact-trace v1
    # columns: start_seconds end_seconds mobile_id
    120.0 122.5 phone-17
    940.2 941.8 phone-3

Lines starting with ``#`` are comments; the version header is required
so format drift fails loudly instead of parsing garbage.

City-scale inputs come in through the **streaming** path instead:
:func:`stream_contacts` reads native, CSV (``start,end[,mobile_id]``
header row), or JSONL (``{"start": ..., "end": ..., "mobile_id": ...}``
per line) files one line at a time, validates each row strictly with
line numbers in every error, requires rows sorted by start time, and
stops at the simulation horizon — so a multi-gigabyte trace file is
never fully materialized.  :class:`TraceFileSource` packages that
reader as a scenario contact source (the ``"trace-driven"`` entry of
``scenario_factories``) with deterministic chunked replay: optional
time scaling, optional periodic repetition, and overlap clipping so
replayed contacts satisfy the runners' non-overlap invariant.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, TextIO, Tuple, Union

from ..errors import ConfigurationError, TraceFormatError
from .contact import Contact, ContactTrace

HEADER = "# repro-contact-trace v1"

#: Recognized :func:`stream_contacts` formats (``None`` = by suffix).
TRACE_FORMATS = ("native", "csv", "jsonl")

#: Accepted CSV header rows (column names are part of the schema).
_CSV_HEADERS = ("start,end", "start,end,mobile_id")

#: JSONL row schema: required and optional keys.
_JSONL_REQUIRED = ("start", "end")
_JSONL_OPTIONAL = ("mobile_id",)

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def write_trace(trace: ContactTrace, destination: PathOrFile) -> None:
    """Serialize *trace* to a file path or text file object."""
    if hasattr(destination, "write"):
        _write_stream(trace, destination)  # type: ignore[arg-type]
        return
    with open(os.fspath(destination), "w", encoding="utf-8") as handle:
        _write_stream(trace, handle)


def read_trace(source: PathOrFile) -> ContactTrace:
    """Parse a trace from a file path or text file object.

    Raises:
        TraceFormatError: on a missing/wrong header or malformed rows.
    """
    if hasattr(source, "read"):
        return _read_stream(source)  # type: ignore[arg-type]
    with open(os.fspath(source), "r", encoding="utf-8") as handle:
        return _read_stream(handle)


def parse_trace_text(text: str) -> ContactTrace:
    """Parse a trace from an in-memory string."""
    return _read_stream(io.StringIO(text))


def _write_stream(trace: ContactTrace, stream: TextIO) -> None:
    stream.write(HEADER + "\n")
    stream.write("# columns: start_seconds end_seconds mobile_id\n")
    for contact in trace:
        stream.write(f"{contact.start:.6f} {contact.end:.6f} {contact.mobile_id}\n")


def _read_stream(stream: TextIO) -> ContactTrace:
    first_line = stream.readline()
    if first_line.strip() != HEADER:
        raise TraceFormatError(
            f"missing trace header; expected {HEADER!r}, got {first_line.strip()!r}"
        )
    contacts: List[Contact] = []
    for line_number, raw_line in enumerate(stream, start=2):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise TraceFormatError(
                f"line {line_number}: expected 2 or 3 columns, got {len(parts)}"
            )
        try:
            start = float(parts[0])
            end = float(parts[1])
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: non-numeric time") from exc
        if end <= start:
            raise TraceFormatError(
                f"line {line_number}: contact end {end} must exceed start {start}"
            )
        mobile_id = parts[2] if len(parts) == 3 else "mobile"
        contacts.append(Contact(start, end - start, mobile_id))
    return ContactTrace(contacts)


def detect_trace_format(path: Union[str, "os.PathLike[str]"]) -> str:
    """Infer the trace format from the file suffix.

    ``.csv`` → ``"csv"``, ``.jsonl``/``.ndjson`` → ``"jsonl"``,
    anything else → the native headered format.
    """
    suffix = os.path.splitext(os.fspath(path))[1].lower()
    if suffix == ".csv":
        return "csv"
    if suffix in (".jsonl", ".ndjson"):
        return "jsonl"
    return "native"


def _parse_native_row(
    line: str, line_number: int
) -> Tuple[float, float, str]:
    parts = line.split()
    if len(parts) not in (2, 3):
        raise TraceFormatError(
            f"line {line_number}: expected 2 or 3 columns, got {len(parts)}"
        )
    try:
        start = float(parts[0])
        end = float(parts[1])
    except ValueError as exc:
        raise TraceFormatError(f"line {line_number}: non-numeric time") from exc
    mobile_id = parts[2] if len(parts) == 3 else "mobile"
    return start, end, mobile_id


def _parse_csv_row(
    line: str, line_number: int, n_columns: int
) -> Tuple[float, float, str]:
    parts = [part.strip() for part in line.split(",")]
    if len(parts) != n_columns:
        raise TraceFormatError(
            f"line {line_number}: expected {n_columns} columns, got {len(parts)}"
        )
    try:
        start = float(parts[0])
        end = float(parts[1])
    except ValueError as exc:
        raise TraceFormatError(f"line {line_number}: non-numeric time") from exc
    mobile_id = parts[2] if n_columns == 3 and parts[2] else "mobile"
    return start, end, mobile_id


def _parse_jsonl_row(line: str, line_number: int) -> Tuple[float, float, str]:
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise TraceFormatError(
            f"line {line_number}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise TraceFormatError(
            f"line {line_number}: expected a JSON object, "
            f"got {type(record).__name__}"
        )
    missing = sorted(set(_JSONL_REQUIRED) - set(record))
    if missing:
        raise TraceFormatError(
            f"line {line_number}: missing required key(s) {missing}"
        )
    unknown = sorted(set(record) - set(_JSONL_REQUIRED) - set(_JSONL_OPTIONAL))
    if unknown:
        raise TraceFormatError(
            f"line {line_number}: unknown key(s) {unknown}; "
            f"schema is start, end, mobile_id"
        )
    start, end = record["start"], record["end"]
    if isinstance(start, bool) or isinstance(end, bool) or not (
        isinstance(start, (int, float)) and isinstance(end, (int, float))
    ):
        raise TraceFormatError(f"line {line_number}: non-numeric time")
    mobile_id = record.get("mobile_id", "mobile")
    if not isinstance(mobile_id, str) or not mobile_id:
        raise TraceFormatError(
            f"line {line_number}: mobile_id must be a non-empty string"
        )
    return float(start), float(end), mobile_id


def _stream_rows(
    stream: TextIO, fmt: str
) -> Iterator[Tuple[int, float, float, str]]:
    """Yield ``(line_number, start, end, mobile_id)`` rows, strictly."""
    csv_columns = 0
    if fmt == "native":
        first_line = stream.readline()
        if first_line.strip() != HEADER:
            raise TraceFormatError(
                f"missing trace header; expected {HEADER!r}, "
                f"got {first_line.strip()!r}"
            )
        first_data_line = 2
    elif fmt == "csv":
        header = stream.readline().strip()
        if header not in _CSV_HEADERS:
            raise TraceFormatError(
                f"line 1: expected CSV header 'start,end' or "
                f"'start,end,mobile_id', got {header!r}"
            )
        csv_columns = header.count(",") + 1
        first_data_line = 2
    elif fmt == "jsonl":
        first_data_line = 1
    else:
        raise ConfigurationError(
            f"unknown trace format {fmt!r}; known: {sorted(TRACE_FORMATS)}"
        )
    for line_number, raw_line in enumerate(stream, start=first_data_line):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if fmt == "native":
            start, end, mobile_id = _parse_native_row(line, line_number)
        elif fmt == "csv":
            start, end, mobile_id = _parse_csv_row(line, line_number, csv_columns)
        else:
            start, end, mobile_id = _parse_jsonl_row(line, line_number)
        if start < 0:
            raise TraceFormatError(
                f"line {line_number}: contact start must be >= 0, got {start}"
            )
        if end <= start:
            raise TraceFormatError(
                f"line {line_number}: contact end {end} must exceed start {start}"
            )
        yield line_number, start, end, mobile_id


def stream_contacts(
    source: PathOrFile,
    *,
    fmt: Optional[str] = None,
    time_scale: float = 1.0,
    horizon: Optional[float] = None,
) -> Iterator[Contact]:
    """Stream contacts from a trace file without materializing it.

    Rows must be sorted by start time (validated; an out-of-order row
    is a :class:`TraceFormatError`), which is what lets a ``horizon``
    cut short the read: iteration ends at the first contact starting at
    or beyond the horizon, so only the simulated window of a city-scale
    file is ever parsed.  ``time_scale`` multiplies every timestamp
    (e.g. ``0.001`` for a trace recorded in milliseconds).

    Args:
        source: file path or open text stream.
        fmt: ``"native"``, ``"csv"``, or ``"jsonl"``; ``None`` infers
            from the path suffix (streams default to ``"native"``).
        time_scale: seconds per input time unit; must be positive.
        horizon: stop once a (scaled) contact starts at/after this.

    Raises:
        TraceFormatError: on any malformed or out-of-order row.
        ConfigurationError: on an unknown ``fmt`` or bad ``time_scale``.
    """
    if time_scale <= 0:
        raise ConfigurationError(
            f"time_scale must be positive, got {time_scale}"
        )
    if hasattr(source, "read"):
        yield from _stream_scaled(
            source, fmt or "native", time_scale, horizon  # type: ignore[arg-type]
        )
        return
    resolved = fmt or detect_trace_format(source)
    with open(os.fspath(source), "r", encoding="utf-8") as handle:
        yield from _stream_scaled(handle, resolved, time_scale, horizon)


def _stream_scaled(
    stream: TextIO, fmt: str, time_scale: float, horizon: Optional[float]
) -> Iterator[Contact]:
    previous_start = None
    for line_number, start, end, mobile_id in _stream_rows(stream, fmt):
        if previous_start is not None and start < previous_start:
            raise TraceFormatError(
                f"line {line_number}: contact start {start} is before the "
                f"previous start {previous_start}; trace files must be "
                f"sorted by start time for streaming replay"
            )
        previous_start = start
        scaled_start = start * time_scale
        if horizon is not None and scaled_start >= horizon:
            return
        yield Contact(scaled_start, (end - start) * time_scale, mobile_id)


@dataclass(frozen=True)
class TraceFileSource:
    """Scenario contact source replaying a trace file deterministically.

    The file is re-streamed on every ``generate`` call (never cached,
    never fully read past the horizon).  Contacts are clipped against
    each other so the replayed trace satisfies the runners' non-overlap
    invariant: a contact starting inside its predecessor is deferred to
    the predecessor's end, and dropped if wholly swallowed.  With
    ``repeat_every`` set, the file is replayed again at ``t + k *
    repeat_every`` until the horizon is covered — a day-long recording
    can drive a fortnight-long study.

    The replay depends only on the file contents and these fields —
    never on the RNG streams — so every engine sees the identical
    trace for a given scenario.
    """

    path: str
    fmt: Optional[str] = None
    time_scale: float = 1.0
    repeat_every: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fmt is not None and self.fmt not in TRACE_FORMATS:
            raise ConfigurationError(
                f"unknown trace format {self.fmt!r}; "
                f"known: {sorted(TRACE_FORMATS)}"
            )
        if self.time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {self.time_scale}"
            )
        if self.repeat_every is not None and self.repeat_every <= 0:
            raise ConfigurationError(
                f"repeat_every must be positive, got {self.repeat_every}"
            )

    def generate(self, scenario, streams) -> ContactTrace:
        """Replay the file over the scenario horizon (streams unused)."""
        del streams  # exogenous workload: identical for every seed
        horizon = scenario.epochs * scenario.profile.epoch_length
        contacts: List[Contact] = []
        previous_end = 0.0
        cycle = 0
        while True:
            offset = cycle * self.repeat_every if self.repeat_every else 0.0
            if offset >= horizon:
                break
            for contact in stream_contacts(
                self.path,
                fmt=self.fmt,
                time_scale=self.time_scale,
                horizon=horizon - offset,
            ):
                begin = max(contact.start + offset, previous_end)
                end = contact.end + offset
                if begin >= horizon or end <= begin:
                    continue
                contacts.append(Contact(begin, end - begin, contact.mobile_id))
                previous_end = end
            cycle += 1
            if self.repeat_every is None:
                break
        return ContactTrace(contacts)
