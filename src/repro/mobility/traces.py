"""Contact-trace file format (CRAWDAD-style) with reader and writer.

Real contact traces (e.g. CRAWDAD haggle/imote) are distributed as
whitespace-separated columns of contact start/end times.  We use a
compatible plain-text format so that published traces can be converted
with a one-line awk script and loaded here:

.. code-block:: text

    # repro-contact-trace v1
    # columns: start_seconds end_seconds mobile_id
    120.0 122.5 phone-17
    940.2 941.8 phone-3

Lines starting with ``#`` are comments; the version header is required
so format drift fails loudly instead of parsing garbage.
"""

from __future__ import annotations

import io
import os
from typing import List, TextIO, Union

from ..errors import TraceFormatError
from .contact import Contact, ContactTrace

HEADER = "# repro-contact-trace v1"

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def write_trace(trace: ContactTrace, destination: PathOrFile) -> None:
    """Serialize *trace* to a file path or text file object."""
    if hasattr(destination, "write"):
        _write_stream(trace, destination)  # type: ignore[arg-type]
        return
    with open(os.fspath(destination), "w", encoding="utf-8") as handle:
        _write_stream(trace, handle)


def read_trace(source: PathOrFile) -> ContactTrace:
    """Parse a trace from a file path or text file object.

    Raises:
        TraceFormatError: on a missing/wrong header or malformed rows.
    """
    if hasattr(source, "read"):
        return _read_stream(source)  # type: ignore[arg-type]
    with open(os.fspath(source), "r", encoding="utf-8") as handle:
        return _read_stream(handle)


def parse_trace_text(text: str) -> ContactTrace:
    """Parse a trace from an in-memory string."""
    return _read_stream(io.StringIO(text))


def _write_stream(trace: ContactTrace, stream: TextIO) -> None:
    stream.write(HEADER + "\n")
    stream.write("# columns: start_seconds end_seconds mobile_id\n")
    for contact in trace:
        stream.write(f"{contact.start:.6f} {contact.end:.6f} {contact.mobile_id}\n")


def _read_stream(stream: TextIO) -> ContactTrace:
    first_line = stream.readline()
    if first_line.strip() != HEADER:
        raise TraceFormatError(
            f"missing trace header; expected {HEADER!r}, got {first_line.strip()!r}"
        )
    contacts: List[Contact] = []
    for line_number, raw_line in enumerate(stream, start=2):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise TraceFormatError(
                f"line {line_number}: expected 2 or 3 columns, got {len(parts)}"
            )
        try:
            start = float(parts[0])
            end = float(parts[1])
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: non-numeric time") from exc
        if end <= start:
            raise TraceFormatError(
                f"line {line_number}: contact end {end} must exceed start {start}"
            )
        mobile_id = parts[2] if len(parts) == 3 else "mobile"
        contacts.append(Contact(start, end - start, mobile_id))
    return ContactTrace(contacts)
