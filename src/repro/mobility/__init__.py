"""Mobility and contact substrate.

Everything about *when* mobile nodes are within range of a sensor node:

* :mod:`~repro.mobility.contact` — the Contact record and contact lists;
* :mod:`~repro.mobility.arrival` — inter-contact arrival processes
  (deterministic, normal-jittered as in the paper's simulation,
  exponential/Poisson);
* :mod:`~repro.mobility.profiles` — slot-based temporal rate profiles
  (the rush-hour structure);
* :mod:`~repro.mobility.roadside` — the paper's roadside scenario
  expressed geometrically (vehicle speed + communication range);
* :mod:`~repro.mobility.traces` — a CRAWDAD-style contact trace file
  format with reader/writer;
* :mod:`~repro.mobility.synthetic` — generators that combine profiles and
  arrival processes into multi-day synthetic traces;
* :mod:`~repro.mobility.travel_demand` — parametric bimodal travel-demand
  curves reproducing the shape of the paper's Fig. 3.
"""

from .contact import Contact, ContactTrace
from .arrival import (
    ArrivalProcess,
    DeterministicArrivals,
    NormalJitterArrivals,
    PoissonArrivals,
)
from .profiles import SlotProfile, RushHourSpec
from .roadside import RoadsideScenario
from .traces import read_trace, write_trace
from .synthetic import SyntheticTraceGenerator, TraceConfig
from .travel_demand import TravelDemandProfile, midpoint_bridge_profile

__all__ = [
    "Contact",
    "ContactTrace",
    "ArrivalProcess",
    "DeterministicArrivals",
    "NormalJitterArrivals",
    "PoissonArrivals",
    "SlotProfile",
    "RushHourSpec",
    "RoadsideScenario",
    "read_trace",
    "write_trace",
    "SyntheticTraceGenerator",
    "TraceConfig",
    "TravelDemandProfile",
    "midpoint_bridge_profile",
]
