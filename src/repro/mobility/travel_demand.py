"""Parametric travel-demand profiles (reproduces the shape of Fig. 3).

Fig. 3 of the paper shows the temporal distribution of eligible user
travel demand at the Midpoint Bridge (Cain, Burris & Pendyala 2001):
a strongly bimodal daily curve with an AM peak around 07:00-09:00 and a
PM peak around 16:00-18:00, and the observation that variable toll
pricing *flattens but does not remove* the peaks.

We model hourly demand as a baseline plus two Gaussian peaks.  The
``variable_pricing`` variant reduces peak amplitude and widens the
peaks, reproducing the paper's qualitative point: rush hours persist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..units import require_non_negative, require_positive


@dataclass(frozen=True)
class GaussianPeak:
    """One rush-hour peak in the daily demand curve."""

    center_hour: float
    width_hours: float
    amplitude: float

    def __post_init__(self) -> None:
        if not 0 <= self.center_hour < 24:
            raise ConfigurationError("center_hour must be in [0, 24)")
        require_positive("width_hours", self.width_hours)
        require_non_negative("amplitude", self.amplitude)

    def value(self, hour: float) -> float:
        """Peak contribution at *hour* (wrapped into the day)."""
        # Wrap-around distance on the 24 h circle.
        delta = min(abs(hour - self.center_hour), 24 - abs(hour - self.center_hour))
        return self.amplitude * math.exp(-0.5 * (delta / self.width_hours) ** 2)


@dataclass(frozen=True)
class TravelDemandProfile:
    """Baseline + peaks model of daily travel demand."""

    baseline: float
    peaks: Tuple[GaussianPeak, ...]
    label: str = "demand"

    def __post_init__(self) -> None:
        require_non_negative("baseline", self.baseline)

    def demand_at(self, hour: float) -> float:
        """Instantaneous demand (trips/hour) at *hour* of day."""
        return self.baseline + sum(peak.value(hour % 24) for peak in self.peaks)

    def hourly_series(self, samples_per_hour: int = 1) -> List[float]:
        """Demand sampled at slot midpoints across one day."""
        if samples_per_hour <= 0:
            raise ConfigurationError("samples_per_hour must be positive")
        count = 24 * samples_per_hour
        step = 24.0 / count
        return [self.demand_at((i + 0.5) * step) for i in range(count)]

    def share_series(self, samples_per_hour: int = 1) -> List[float]:
        """Hourly series normalized to sum to 1 (a temporal distribution)."""
        series = self.hourly_series(samples_per_hour)
        total = sum(series)
        if total == 0:
            return [0.0] * len(series)
        return [value / total for value in series]

    def peak_hours(self, threshold_ratio: float = 1.5) -> List[int]:
        """Hours whose demand exceeds ``threshold_ratio`` x the daily mean.

        This is the statistic an engineer (or the learning module) would
        use to mark rush-hour slots from demand data.
        """
        series = self.hourly_series()
        mean = sum(series) / len(series)
        return [hour for hour, value in enumerate(series) if value > threshold_ratio * mean]

    def peak_to_offpeak_ratio(self) -> float:
        """Max hourly demand over min hourly demand (inf if min is 0)."""
        series = self.hourly_series()
        low = min(series)
        high = max(series)
        return float("inf") if low == 0 else high / low


def midpoint_bridge_profile(variable_pricing: bool = False) -> TravelDemandProfile:
    """The Fig. 3 shape: AM and PM commute peaks over a daytime baseline.

    With ``variable_pricing=True`` the peaks are damped ~25% and widened,
    matching the paper's observation that pricing spreads but does not
    eliminate rush hours.
    """
    damp = 0.75 if variable_pricing else 1.0
    widen = 1.35 if variable_pricing else 1.0
    label = "variable-pricing" if variable_pricing else "fixed-pricing"
    return TravelDemandProfile(
        baseline=90.0,
        peaks=(
            GaussianPeak(center_hour=7.8, width_hours=1.1 * widen, amplitude=420.0 * damp),
            GaussianPeak(center_hour=16.9, width_hours=1.3 * widen, amplitude=480.0 * damp),
        ),
        label=label,
    )
