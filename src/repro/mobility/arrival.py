"""Inter-contact arrival processes.

The paper's analysis uses fixed inter-contact intervals (``Tinterval``)
and fixed contact lengths; its simulation replaces both with normal
distributions whose standard deviation is one tenth of the mean.  Both
are provided here, plus a Poisson (exponential-interval) process used by
ablations and by the SNIP companion-paper model for exponentially
distributed contact lengths.

An :class:`ArrivalProcess` turns "mean interval + mean length" into a
concrete :class:`~repro.mobility.contact.ContactTrace` over a horizon.
All processes guarantee the paper's sparse-network assumption: generated
contacts never overlap (the next start is pushed past the previous end
when jitter would violate it).
"""

from __future__ import annotations

import abc
from typing import Optional

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams
from ..units import require_non_negative, require_positive
from .contact import Contact, ContactTrace


class ArrivalProcess(abc.ABC):
    """Generates contact traces over [start, end) for one sensor node."""

    @abc.abstractmethod
    def sample_interval(self) -> float:
        """Draw one inter-contact interval (start-to-start), seconds."""

    @abc.abstractmethod
    def sample_length(self) -> float:
        """Draw one contact length, seconds."""

    @property
    @abc.abstractmethod
    def mean_interval(self) -> float:
        """Expected start-to-start gap."""

    @property
    @abc.abstractmethod
    def mean_length(self) -> float:
        """Expected contact length."""

    @property
    def rate(self) -> float:
        """Expected contacts per second (1 / mean_interval)."""
        return 1.0 / self.mean_interval

    def generate(
        self,
        start: float,
        end: float,
        *,
        mobile_id: str = "mobile",
        first_offset: Optional[float] = None,
    ) -> ContactTrace:
        """Generate non-overlapping contacts whose starts lie in [start, end).

        The first contact starts at ``start + first_offset``; when
        *first_offset* is None, one interval sample is used so traces do
        not all begin with a contact at the window edge.
        """
        if end < start:
            raise ConfigurationError(f"end {end} precedes start {start}")
        trace = ContactTrace()
        cursor = start + (self.sample_interval() if first_offset is None else first_offset)
        previous_end = start
        while cursor < end:
            begin = max(cursor, previous_end)
            if begin >= end:
                break
            contact = Contact(begin, self.sample_length(), mobile_id)
            trace.append(contact)
            previous_end = contact.end
            cursor = cursor + self.sample_interval()
        return trace


class DeterministicArrivals(ArrivalProcess):
    """Fixed interval, fixed length — the paper's analysis setting."""

    def __init__(self, interval: float, length: float) -> None:
        self._interval = require_positive("interval", interval)
        self._length = require_positive("length", length)
        if length >= interval:
            raise ConfigurationError(
                f"contact length {length} must be shorter than interval {interval} "
                "for the sparse-network assumption to hold"
            )

    def sample_interval(self) -> float:
        return self._interval

    def sample_length(self) -> float:
        return self._length

    @property
    def mean_interval(self) -> float:
        return self._interval

    @property
    def mean_length(self) -> float:
        return self._length


class NormalJitterArrivals(ArrivalProcess):
    """Normal-distributed interval and length — the paper's simulation.

    Both follow N(mean, (mean * cv)^2) with ``cv = 0.1`` by default
    ("a normal distribution with small deviation (a tenth of the mean)",
    §VII-A-2), truncated to stay positive.
    """

    def __init__(
        self,
        mean_interval: float,
        mean_length: float,
        *,
        streams: RandomStreams,
        cv: float = 0.1,
        stream_prefix: str = "arrivals",
    ) -> None:
        self._mean_interval = require_positive("mean_interval", mean_interval)
        self._mean_length = require_positive("mean_length", mean_length)
        self._cv = require_non_negative("cv", cv)
        self._streams = streams
        self._prefix = stream_prefix

    def sample_interval(self) -> float:
        return self._streams.normal_positive(
            f"{self._prefix}.interval",
            self._mean_interval,
            self._mean_interval * self._cv,
        )

    def sample_length(self) -> float:
        return self._streams.normal_positive(
            f"{self._prefix}.length",
            self._mean_length,
            self._mean_length * self._cv,
        )

    @property
    def mean_interval(self) -> float:
        return self._mean_interval

    @property
    def mean_length(self) -> float:
        return self._mean_length


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals with exponential contact lengths.

    Used by ablations that test SNIP-RH's robustness to heavier-tailed
    contact processes (the SNIP paper models exponential contact lengths
    explicitly; see footnote 1 in §VI-C of this paper).
    """

    def __init__(
        self,
        mean_interval: float,
        mean_length: float,
        *,
        streams: RandomStreams,
        stream_prefix: str = "poisson",
        exponential_lengths: bool = True,
    ) -> None:
        self._mean_interval = require_positive("mean_interval", mean_interval)
        self._mean_length = require_positive("mean_length", mean_length)
        self._streams = streams
        self._prefix = stream_prefix
        self._exponential_lengths = exponential_lengths

    def sample_interval(self) -> float:
        rng = self._streams.stream(f"{self._prefix}.interval")
        return float(rng.exponential(self._mean_interval))

    def sample_length(self) -> float:
        if not self._exponential_lengths:
            return self._mean_length
        rng = self._streams.stream(f"{self._prefix}.length")
        # Clamp away zero-length contacts (probability ~0 but physically
        # meaningless).
        return max(1e-6, float(rng.exponential(self._mean_length)))

    @property
    def mean_interval(self) -> float:
        return self._mean_interval

    @property
    def mean_length(self) -> float:
        return self._mean_length
