"""Slot-based temporal profiles: the rush-hour structure of an epoch.

The paper divides an epoch (24 h) into N equal time-slots (N = 24) and
marks each slot "1" (rush hour) or "0".  :class:`SlotProfile` carries
per-slot contact statistics (mean interval, mean length) and the
rush-hour marking; :class:`RushHourSpec` is the convenient constructor
for the paper's scenario style ("rush hours 07:00-09:00 and
17:00-19:00, interval 300 s inside, 1800 s outside").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import DAY, HOUR, require_positive


@dataclass(frozen=True)
class SlotProfile:
    """Per-slot contact process parameters over one epoch.

    Attributes:
        epoch_length: ``Tepoch`` in seconds.
        mean_intervals: per-slot mean inter-contact interval (seconds);
            ``float('inf')`` denotes a slot with no contacts.
        mean_lengths: per-slot mean contact length (seconds).
        rush_flags: the paper's "1"/"0" markings, as booleans.
    """

    epoch_length: float
    mean_intervals: Tuple[float, ...]
    mean_lengths: Tuple[float, ...]
    rush_flags: Tuple[bool, ...]

    def __post_init__(self) -> None:
        require_positive("epoch_length", self.epoch_length)
        n = len(self.mean_intervals)
        if n == 0:
            raise ConfigurationError("profile needs at least one slot")
        if len(self.mean_lengths) != n or len(self.rush_flags) != n:
            raise ConfigurationError(
                "mean_intervals, mean_lengths and rush_flags must have equal length"
            )
        for interval in self.mean_intervals:
            if interval <= 0:
                raise ConfigurationError("mean intervals must be positive (inf allowed)")
        for length in self.mean_lengths:
            if length <= 0:
                raise ConfigurationError("mean lengths must be positive")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """N — number of slots per epoch."""
        return len(self.mean_intervals)

    @property
    def slot_length(self) -> float:
        """Length of one slot in seconds."""
        return self.epoch_length / self.slot_count

    def slot_index(self, time: float) -> int:
        """Slot index for an absolute time (folded into the epoch)."""
        position = time % self.epoch_length
        return min(int(position // self.slot_length), self.slot_count - 1)

    def slot_bounds(self, index: int) -> Tuple[float, float]:
        """[start, end) of slot *index* within the epoch."""
        self._check_index(index)
        return index * self.slot_length, (index + 1) * self.slot_length

    # ------------------------------------------------------------------
    # contact statistics
    # ------------------------------------------------------------------
    def rate(self, index: int) -> float:
        """Contacts per second in slot *index* (0 for empty slots)."""
        self._check_index(index)
        interval = self.mean_intervals[index]
        return 0.0 if interval == float("inf") else 1.0 / interval

    def is_rush(self, index: int) -> bool:
        """True when slot *index* is marked as rush hour."""
        self._check_index(index)
        return self.rush_flags[index]

    def is_rush_at(self, time: float) -> bool:
        """True when the absolute *time* falls in a rush-hour slot."""
        return self.is_rush(self.slot_index(time))

    def expected_contacts(self, index: int) -> float:
        """Expected number of contacts arriving during slot *index*."""
        return self.rate(index) * self.slot_length

    def expected_capacity(self, index: int) -> float:
        """Expected contact capacity (seconds) arriving in slot *index*."""
        return self.expected_contacts(index) * self.mean_lengths[index]

    def total_expected_capacity(self) -> float:
        """Expected contact capacity over a whole epoch."""
        return sum(self.expected_capacity(i) for i in range(self.slot_count))

    def rush_expected_capacity(self) -> float:
        """Expected capacity arriving inside rush-hour slots."""
        return sum(
            self.expected_capacity(i)
            for i in range(self.slot_count)
            if self.rush_flags[i]
        )

    def rush_duration(self) -> float:
        """Total rush-hour seconds per epoch (``Trh``)."""
        return self.slot_length * sum(self.rush_flags)

    def rush_slot_indices(self) -> List[int]:
        """Indices of rush-hour slots, ascending."""
        return [i for i, flag in enumerate(self.rush_flags) if flag]

    def with_rush_flags(self, rush_flags: Sequence[bool]) -> "SlotProfile":
        """Copy with different markings (used by the learning module)."""
        return SlotProfile(
            self.epoch_length,
            self.mean_intervals,
            self.mean_lengths,
            tuple(bool(flag) for flag in rush_flags),
        )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.slot_count:
            raise ConfigurationError(
                f"slot index {index} out of range [0, {self.slot_count})"
            )


@dataclass(frozen=True)
class RushHourSpec:
    """Declarative description of a two-rate (rush / other) epoch.

    This mirrors the paper's evaluation scenario exactly; call
    :meth:`to_profile` to obtain the general :class:`SlotProfile`.
    """

    epoch_length: float = DAY
    slot_count: int = 24
    #: Half-open hour ranges marked as rush hours, e.g. ((7, 9), (17, 19)).
    rush_windows: Tuple[Tuple[float, float], ...] = ((7.0, 9.0), (17.0, 19.0))
    rush_interval: float = 300.0
    other_interval: float = 1800.0
    contact_length: float = 2.0

    def __post_init__(self) -> None:
        require_positive("epoch_length", self.epoch_length)
        if self.slot_count <= 0:
            raise ConfigurationError("slot_count must be positive")
        require_positive("rush_interval", self.rush_interval)
        require_positive("other_interval", self.other_interval)
        require_positive("contact_length", self.contact_length)
        for lo, hi in self.rush_windows:
            if not 0 <= lo < hi <= self.epoch_length / HOUR:
                raise ConfigurationError(
                    f"rush window ({lo}, {hi}) must lie inside the epoch in hours"
                )

    def to_profile(self) -> SlotProfile:
        """Expand into a :class:`SlotProfile`.

        A slot is marked rush when its midpoint falls inside any rush
        window (windows are given in hours from epoch start).
        """
        slot_length = self.epoch_length / self.slot_count
        flags: List[bool] = []
        intervals: List[float] = []
        for index in range(self.slot_count):
            midpoint_hours = (index + 0.5) * slot_length / HOUR
            in_rush = any(lo <= midpoint_hours < hi for lo, hi in self.rush_windows)
            flags.append(in_rush)
            intervals.append(self.rush_interval if in_rush else self.other_interval)
        lengths = [self.contact_length] * self.slot_count
        return SlotProfile(
            self.epoch_length, tuple(intervals), tuple(lengths), tuple(flags)
        )
