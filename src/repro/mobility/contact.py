"""Contact records and contact traces.

A *contact* (paper §II) is the event of a mobile node dwelling within
the communication range of a sensor node; its length ``Tcontact`` is the
dwell time.  A :class:`ContactTrace` is a chronologically ordered list
of contacts seen by one sensor node, the common currency between the
mobility generators, the simulators, and the trace file format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from ..units import DAY


@dataclass(frozen=True)
class Contact:
    """One mobile-node pass within range of a sensor node."""

    start: float
    length: float
    mobile_id: str = "mobile"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"contact start must be >= 0, got {self.start}")
        if self.length <= 0:
            raise ConfigurationError(f"contact length must be > 0, got {self.length}")

    @property
    def end(self) -> float:
        """Time the mobile node leaves communication range."""
        return self.start + self.length

    def overlaps(self, other: "Contact") -> bool:
        """True when the two contact windows intersect."""
        return self.start < other.end and other.start < self.end

    def shifted(self, offset: float) -> "Contact":
        """A copy translated in time by *offset* seconds."""
        return Contact(self.start + offset, self.length, self.mobile_id)


@dataclass
class ContactTrace:
    """A chronologically sorted sequence of contacts.

    The paper's sparse-network assumption (at most one mobile node in
    range at a time) is surfaced via :meth:`has_overlaps`, and enforced
    by generators rather than by this container, so that real-world
    traces with overlapping contacts can still be loaded and inspected.
    """

    contacts: List[Contact] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.contacts = sorted(self.contacts, key=lambda c: (c.start, c.end))

    def __len__(self) -> int:
        return len(self.contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self.contacts)

    def __getitem__(self, index: int) -> Contact:
        return self.contacts[index]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, contact: Contact) -> None:
        """Append a contact that starts no earlier than the last one."""
        if self.contacts and contact.start < self.contacts[-1].start:
            raise ConfigurationError(
                "contacts must be appended in chronological order"
            )
        self.contacts.append(contact)

    @classmethod
    def merged(cls, traces: Iterable["ContactTrace"]) -> "ContactTrace":
        """Merge several traces into one sorted trace."""
        contacts: List[Contact] = []
        for trace in traces:
            contacts.extend(trace.contacts)
        return cls(contacts)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Time of the last contact end (0 for an empty trace)."""
        return max((c.end for c in self.contacts), default=0.0)

    @property
    def total_capacity(self) -> float:
        """Sum of contact lengths — the theoretical upper bound on ζ."""
        return sum(c.length for c in self.contacts)

    def between(self, start: float, end: float) -> "ContactTrace":
        """Contacts that *start* within [start, end)."""
        return ContactTrace(
            [c for c in self.contacts if start <= c.start < end]
        )

    def capacity_between(self, start: float, end: float) -> float:
        """Total contact-length seconds of contacts starting in [start, end)."""
        return sum(c.length for c in self.contacts if start <= c.start < end)

    def has_overlaps(self) -> bool:
        """True if any two consecutive contacts intersect."""
        return any(
            earlier.overlaps(later)
            for earlier, later in zip(self.contacts, self.contacts[1:])
        )

    def inter_contact_times(self) -> List[float]:
        """Gaps between consecutive contact starts (``Tinterval`` samples)."""
        return [
            later.start - earlier.start
            for earlier, later in zip(self.contacts, self.contacts[1:])
        ]

    def mean_contact_length(self) -> Optional[float]:
        """Average ``Tcontact``, or None for an empty trace."""
        if not self.contacts:
            return None
        return self.total_capacity / len(self.contacts)

    # ------------------------------------------------------------------
    # epoch views
    # ------------------------------------------------------------------
    def epochs(self, epoch_length: float = DAY) -> List["ContactTrace"]:
        """Split into per-epoch traces, each rebased to start at 0."""
        if epoch_length <= 0:
            raise ConfigurationError("epoch_length must be positive")
        buckets: List[List[Contact]] = []
        for contact in self.contacts:
            index = int(contact.start // epoch_length)
            while len(buckets) <= index:
                buckets.append([])
            # Floor division can round up by one ulp when the start sits
            # on an epoch boundary; clamp the rebased start at zero so a
            # float artefact never produces a (invalid) negative time.
            rebased = max(0.0, contact.start - index * epoch_length)
            buckets[index].append(
                Contact(rebased, contact.length, contact.mobile_id)
            )
        return [ContactTrace(bucket) for bucket in buckets]

    def slot_capacities(
        self, epoch_length: float, slot_count: int
    ) -> List[float]:
        """Per-slot contact capacity folded across all epochs.

        Returns ``slot_count`` totals: entry *i* is the summed length of
        contacts whose start falls in slot *i* of any epoch.  This is the
        statistic a sensor node would learn to identify rush hours.
        """
        if slot_count <= 0:
            raise ConfigurationError("slot_count must be positive")
        slot_length = epoch_length / slot_count
        totals = [0.0] * slot_count
        for contact in self.contacts:
            position = contact.start % epoch_length
            index = min(int(position // slot_length), slot_count - 1)
            totals[index] += contact.length
        return totals
