"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A scenario, scheduler, or model was configured with invalid values.

    Raised eagerly at construction time so that misconfiguration never
    surfaces as a silently wrong simulation result.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation kernel detected an inconsistent internal state."""


class ScheduleError(ReproError, RuntimeError):
    """A scheduling mechanism produced or received an invalid plan."""


class TraceFormatError(ReproError, ValueError):
    """A contact-trace file could not be parsed."""


class BudgetExceededError(ScheduleError):
    """An operation would push probing energy past the epoch budget.

    The schedulers are expected to *prevent* this (it is a hard
    invariant), so seeing this exception indicates a scheduler bug.
    """


class InfeasibleError(ReproError, ValueError):
    """An optimization problem has no feasible solution."""
