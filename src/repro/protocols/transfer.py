"""Data transfer during a probed contact.

After a probe succeeds, the sensor node keeps its radio on and streams
buffered reports to the mobile node for the remainder of the contact
(``Tprobed``).  The transfer:

* drains the node's :class:`~repro.node.buffer.DataBuffer` by up to the
  usable window (upload-seconds);
* charges the extra radio-on time to the node's probing account and
  ledger — the paper's Φ counts *all* radio-on time, and for data
  transfer the radio stays on exactly as long as there is data to send
  (or until the contact ends).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..node.mobile import MobileNode
from ..node.sensor import SensorNode
from ..radio.link import LinkModel
from ..radio.states import RadioState


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one in-contact upload."""

    #: Probed window that was available, seconds.
    window: float
    #: Upload-seconds of data shipped to the mobile node.
    uploaded: float
    #: Radio-on seconds spent on the transfer (airtime actually used).
    on_time: float

    @property
    def window_utilization(self) -> float:
        """Fraction of the probed window carrying payload."""
        return 0.0 if self.window == 0 else self.uploaded / self.window


class ContactTransfer:
    """Executes uploads and performs the associated accounting."""

    def __init__(self, link: LinkModel = LinkModel()) -> None:
        self.link = link

    def execute(
        self,
        node: SensorNode,
        probed_seconds: float,
        *,
        mobile: MobileNode = None,
        charge_to_budget: bool = False,
    ) -> TransferResult:
        """Upload from *node*'s buffer through a probed window.

        Args:
            node: the sensor node whose buffer drains.
            probed_seconds: the Tprobed window available.
            mobile: optional mobile endpoint to credit with the data.
            charge_to_budget: when True, transfer airtime is charged to
                the node's probing account as well as the ledger.  The
                paper budgets Φmax for *contact probing*; transfer energy
                is proportional to useful data and accounted separately
                by default.
        """
        usable = self.link.usable_window(probed_seconds)
        uploaded = node.buffer.upload(usable)
        # Radio is on for the association overhead plus actual payload time.
        on_time = min(
            probed_seconds, uploaded + self.link.association_overhead
        )
        node.ledger.record(RadioState.TRANSMIT, on_time)
        if charge_to_budget:
            node.account.charge(on_time)
        if mobile is not None:
            mobile.receive(uploaded)
        return TransferResult(
            window=probed_seconds, uploaded=uploaded, on_time=on_time
        )
