"""MNIP — Mobile Node-Initiated Probing (the baseline SNIP beat).

In mobile-node-initiated probing (Anastasi et al., EWSN'09) the *mobile*
node broadcasts beacons with period ``Tbeacon``, and a duty-cycled
sensor node hears one only if a beacon transmission overlaps one of its
listen windows.  The SNIP companion paper shows this wastes most of the
sensor's scarce on-time; we implement it so the repository can reproduce
that comparison (it also gives SNIP's Υ model a meaningful denominator).

Analytic model used here (uniform random phase between the two periodic
processes): a beacon lands inside a given on-window of length ``Ton``
with per-window probability ``min(1, (Ton + airtime) / Tbeacon)``; probes
happen at the first on-window during the contact that catches a beacon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..mobility.contact import Contact
from ..radio.duty_cycle import DutyCycleConfig
from ..sim.rng import RandomStreams
from ..units import require_positive
from .snip import SnipProbe


@dataclass(frozen=True)
class MnipProbing:
    """Parameters of the mobile-initiated baseline."""

    config: DutyCycleConfig
    beacon_period: float = 0.1
    beacon_airtime: float = 0.5e-3

    def __post_init__(self) -> None:
        require_positive("beacon_period", self.beacon_period)
        require_positive("beacon_airtime", self.beacon_airtime)
        if self.beacon_airtime >= self.beacon_period:
            raise ConfigurationError("beacon airtime must be below the period")

    # ------------------------------------------------------------------
    # closed-form expectation
    # ------------------------------------------------------------------
    def hit_probability_per_window(self) -> float:
        """P(a beacon overlaps one sensor on-window)."""
        return min(1.0, (self.config.t_on + self.beacon_airtime) / self.beacon_period)

    def expected_probe_ratio(self, contact_length: float) -> float:
        """E[Υ] for a contact of *contact_length* under MNIP.

        The sensor sees ``floor(Tcontact / Tcycle)`` full windows plus a
        partial one; each catches a beacon independently with probability
        *p*.  Conditioned on the first catch being window *k*, the probed
        time is what remains after k cycles.  We sum the geometric series
        directly — cheap and exact enough for the comparison.
        """
        require_positive("contact_length", contact_length)
        t_cycle = self.config.t_cycle
        p = self.hit_probability_per_window()
        if p == 0:
            return 0.0
        expected_probed = 0.0
        # Position of the first on-window is uniform in the cycle; use
        # the mid-phase approximation (start offset = Tcycle / 2).
        offset = t_cycle / 2.0
        window_count = max(0, math.ceil((contact_length - offset) / t_cycle))
        survival = 1.0
        for k in range(window_count):
            window_time = offset + k * t_cycle
            remaining = contact_length - window_time
            if remaining <= 0:
                break
            expected_probed += survival * p * remaining
            survival *= 1.0 - p
        return min(1.0, expected_probed / contact_length)


def mnip_probe_contact(
    probing: MnipProbing,
    contact: Contact,
    streams: RandomStreams,
    *,
    phase: Optional[float] = None,
) -> SnipProbe:
    """Stochastically probe one contact under MNIP.

    Enumerates the sensor's on-windows inside the contact; each catches
    a mobile beacon with the per-window hit probability.  Returns the
    same :class:`~repro.protocols.snip.SnipProbe` record SNIP produces so
    harnesses can treat both protocols uniformly.
    """
    t_cycle = probing.config.t_cycle
    rng = streams.stream("mnip.phase")
    start_offset = float(rng.uniform(0, t_cycle)) if phase is None else phase % t_cycle
    p = probing.hit_probability_per_window()
    hit_rng = streams.stream("mnip.hits")
    window_start = contact.start + start_offset
    while window_start < contact.end:
        if float(hit_rng.uniform()) < p:
            # The probe lands somewhere inside the on-window; use its start,
            # which biases Tprobed upward by at most Ton (= milliseconds).
            return SnipProbe(contact=contact, probe_time=window_start)
        window_start += t_cycle
    return SnipProbe(contact=contact, probe_time=None)
