"""Contact probing protocols.

* :mod:`~repro.protocols.snip` — SNIP, the sensor-node-initiated probing
  mechanism from the companion paper [10]; the substrate this paper's
  schedulers drive.
* :mod:`~repro.protocols.mnip` — the mobile-node-initiated baseline
  (beacons broadcast by the mobile node; the sensor must be listening),
  modelled after Anastasi et al. and used as the comparison point the
  SNIP paper established.
* :mod:`~repro.protocols.transfer` — what happens after a probe: the
  upload of buffered reports during the remainder of the contact.
"""

from .snip import SnipProbe, SnipProbing, probe_contact
from .mnip import MnipProbing, mnip_probe_contact
from .transfer import ContactTransfer, TransferResult

__all__ = [
    "SnipProbe",
    "SnipProbing",
    "probe_contact",
    "MnipProbing",
    "mnip_probe_contact",
    "ContactTransfer",
    "TransferResult",
]
