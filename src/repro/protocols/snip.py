"""SNIP — Sensor Node-Initiated Probing (companion paper [10]).

The mechanism: the sensor node broadcasts one beacon immediately after
each duty-cycle turn-on.  Because the mobile node's radio is always on,
a contact is probed iff a beacon lands inside the contact window; the
probed time then runs from the beacon to the contact end.

Two layers are provided:

* :func:`probe_contact` — the analytic probe for the fast simulator:
  given a beacon schedule and a contact, compute if/when the probe
  happens in O(1);
* :class:`SnipProbing` — the executable protocol for the cycle-accurate
  micro simulator: hooks a beacon broadcast into a
  :class:`~repro.radio.duty_cycle.DutyCycledRadio` and matches beacons
  against live contact windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..mobility.contact import Contact
from ..radio.beacon import BeaconSchedule
from ..radio.duty_cycle import DutyCycleConfig, DutyCycledRadio
from ..sim.engine import Simulator


@dataclass(frozen=True)
class SnipProbe:
    """Outcome of probing one contact."""

    contact: Contact
    #: Time the beacon that probed the contact was sent; None if missed.
    probe_time: Optional[float]

    @property
    def probed(self) -> bool:
        """True when the contact was successfully probed."""
        return self.probe_time is not None

    @property
    def probed_seconds(self) -> float:
        """Tprobed — time from probe to contact end (0 when missed)."""
        if self.probe_time is None:
            return 0.0
        return max(0.0, self.contact.end - self.probe_time)

    @property
    def probe_ratio(self) -> float:
        """Per-contact Υ = Tprobed / Tcontact."""
        return self.probed_seconds / self.contact.length


def probe_contact(schedule: BeaconSchedule, contact: Contact) -> SnipProbe:
    """Analytically probe *contact* against a periodic beacon train.

    The probe succeeds iff the first beacon at or after the contact
    start still falls before the contact end.
    """
    beacon_time = schedule.first_beacon_in(contact.start, contact.end)
    return SnipProbe(contact=contact, probe_time=beacon_time)


class SnipProbing:
    """Executable SNIP for the cycle-accurate micro simulator.

    The caller owns the radio; this class installs itself as the radio's
    ``on_wake`` hook, maintains the currently open contact window, and
    reports probes through the ``on_probe`` callback.  One contact is
    probed at most once (subsequent beacons during the same contact are
    data-plane traffic, not probes).
    """

    def __init__(
        self,
        sim: Simulator,
        radio: DutyCycledRadio,
        *,
        on_probe: Optional[Callable[[SnipProbe], None]] = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.on_probe = on_probe
        self.radio.on_wake = self._beacon
        self._current_contact: Optional[Contact] = None
        self._current_probed = False
        self.probes: List[SnipProbe] = []
        self.beacons_sent = 0

    # ------------------------------------------------------------------
    # contact plane (driven by the mobility model)
    # ------------------------------------------------------------------
    def contact_started(self, contact: Contact) -> None:
        """A mobile node entered range."""
        self._current_contact = contact
        self._current_probed = False
        # SNIP subtlety: if the radio is *already* in an on-window when
        # the contact begins, its beacon was sent before the mobile node
        # arrived, so the contact is not probed until the next wake-up.
        # (The mobile node does not transmit in SNIP.)

    def contact_ended(self, contact: Contact) -> None:
        """The mobile node left range; record a miss if never probed."""
        if self._current_contact is not None and not self._current_probed:
            self._record(SnipProbe(contact=contact, probe_time=None))
        self._current_contact = None
        self._current_probed = False

    # ------------------------------------------------------------------
    # radio plane
    # ------------------------------------------------------------------
    def _beacon(self, time: float) -> None:
        self.beacons_sent += 1
        contact = self._current_contact
        if contact is None or self._current_probed:
            return
        if contact.start <= time < contact.end:
            self._current_probed = True
            self._record(SnipProbe(contact=contact, probe_time=time))

    def _record(self, probe: SnipProbe) -> None:
        self.probes.append(probe)
        # The callback is a success channel: misses are visible through
        # :attr:`missed_count` / :attr:`probes`, not through ``on_probe``.
        if probe.probed and self.on_probe is not None:
            self.on_probe(probe)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def probed_count(self) -> int:
        """Contacts probed successfully."""
        return sum(1 for probe in self.probes if probe.probed)

    @property
    def missed_count(self) -> int:
        """Contacts that ended unprobed."""
        return sum(1 for probe in self.probes if not probe.probed)

    @property
    def probed_seconds(self) -> float:
        """Cumulative Tprobed across all contacts."""
        return sum(probe.probed_seconds for probe in self.probes)
