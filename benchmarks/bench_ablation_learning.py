"""Ablation — autonomous rush-hour learning (§VII-B deployment story).

The paper argues a node can learn its rush hours by running SNIP-AT with
a very small duty-cycle for a few epochs, because it only needs the
*order* of the slots' contact capacity.  This bench runs the adaptive
scheduler from a cold start and reports per-epoch marking agreement with
the ground-truth rush hours, plus the energy spent learning.
"""

import pytest
from conftest import emit

from repro.core.learning import LearnerConfig
from repro.core.schedulers.adaptive import AdaptiveSnipRhScheduler
from repro.experiments.reporting import format_series
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import paper_roadside_scenario

TRUE_FLAGS = [hour in (7, 8, 17, 18) for hour in range(24)]


def generate_learning_run():
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=24.0, epochs=8, seed=9
    )
    # Learning needs enough probes per slot for the ordering to be
    # statistically clear: at d = 0.5% a rush slot yields ~6 probes per
    # epoch (vs ~1 off-peak), so three warm-up epochs separate the
    # classes by several standard deviations.
    scheduler = AdaptiveSnipRhScheduler(
        scenario.profile,
        scenario.model,
        learner_config=LearnerConfig(
            warmup_epochs=3, decay=0.8, ratio_threshold=1.5
        ),
        learning_duty_cycle=0.005,
        background_duty_cycle=0.0002,
        initial_contact_length=2.0,
    )
    agreements = []
    phis = []

    original_hook = scheduler.on_epoch_start

    def tracking_hook(epoch_index, node):
        original_hook(epoch_index, node)
        agreements.append(scheduler.learner.agreement(TRUE_FLAGS))

    scheduler.on_epoch_start = tracking_hook
    result = FastRunner(scenario, scheduler).run()
    phis = [row.phi for row in result.metrics.epochs]
    return scheduler, agreements, phis, result


def test_ablation_learning(once):
    scheduler, agreements, phis, result = once(generate_learning_run)
    epochs = list(range(len(agreements)))
    emit(
        format_series(
            "epoch",
            epochs,
            {"marking agreement": agreements, "Phi (s)": phis},
            title="Ablation: autonomous rush-hour learning from cold start",
        )
    )
    marked = [index for index, flag in enumerate(scheduler.rush_flags) if flag]
    emit(f"final markings: slots {marked} (truth: [7, 8, 17, 18])")
    # The learner must converge to the true rush hours...
    assert scheduler.phase == "exploiting"
    assert agreements[-1] >= 23 / 24
    for slot in (7, 8, 17, 18):
        assert scheduler.rush_flags[slot], f"true rush slot {slot} unmarked"
    # ...after the warm-up (the first epochs run blind).
    assert agreements[0] == 0.0
    # Learning-phase probing is cheap relative to the budget.
    assert phis[0] < 864.0 * 0.6
