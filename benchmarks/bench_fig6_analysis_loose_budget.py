"""Fig. 6 — analysis results, Φmax = Tepoch/100.

Same three panels as Fig. 5 under the loose budget.  Shape pinned: AT
now reaches every target but at ρ = 9.8; RH reaches every target up to
its 48 s rush-capacity cap and fails only ζtarget = 56; OPT reaches 56
by extending the rush slots past their knees at a higher ρ.

Like Fig. 5, ported onto the executor layer via
:func:`grid_common.analysis_points`: the loose budget's (budget,
mechanism) closed-form cells mapped as shards over a
``SerialExecutor``.
"""

import pytest
from conftest import emit
from grid_common import TARGETS, analysis_points

from repro.experiments.reporting import format_series


def generate_fig6():
    return analysis_points(100)


def test_fig6_analysis_loose_budget(once):
    results = once(generate_fig6)
    for metric, label in (("zeta", "(a) zeta (s)"), ("phi", "(b) Phi (s)"), ("rho", "(c) rho")):
        series = {
            name: [getattr(point, metric) for point in points]
            for name, points in results.items()
        }
        emit(
            format_series(
                "zeta_target", TARGETS, series,
                title=f"Fig. 6{label}, Phi_max = Tepoch/100 = 864 s",
            )
        )
    at = {p.zeta_target: p for p in results["SNIP-AT"]}
    rh = {p.zeta_target: p for p in results["SNIP-RH"]}
    opt = {p.zeta_target: p for p in results["SNIP-OPT"]}
    # AT feasible everywhere, expensive (Phi up to ~550 s).
    assert all(point.meets_target for point in at.values())
    assert at[56.0].phi == pytest.approx(549.8, rel=1e-2)
    # RH: feasible through 48, fails only at 56 (rush capacity cap).
    for target in TARGETS[:-1]:
        assert rh[target].meets_target
        assert rh[target].rho == pytest.approx(3.0, rel=1e-3)
    assert not rh[56.0].meets_target
    assert rh[56.0].zeta == pytest.approx(48.0, rel=1e-3)
    # OPT reaches 56 at a higher per-unit cost than the rush floor.
    assert opt[56.0].meets_target
    assert opt[56.0].rho > 3.0
    # RH is ~3.3x cheaper than AT wherever both meet the target.
    for target in TARGETS[:-1]:
        assert at[target].phi / rh[target].phi == pytest.approx(
            9.818 / 3.0, rel=1e-2
        )
