"""Ablation — the latency/energy trade-off behind delay tolerance.

The paper's introduction concedes that opportunistic collection "may
significantly increase the data delivery latency" and targets
applications that tolerate it.  This bench quantifies that trade-off on
the evaluation scenario: delivery delay and probing energy for a
slack-provisioned SNIP-AT, an exactly-sized SNIP-AT, SNIP-OPT, and
SNIP-RH.  It also demonstrates a queueing subtlety the analysis hides:
an AT duty-cycle sized *exactly* to the data rate is a critically-loaded
queue whose delay exceeds even rush-hour batching.
"""

import pytest
from conftest import emit

from repro.core.schedulers.at import SnipAtScheduler
from repro.core.schedulers.opt import SnipOptScheduler
from repro.core.schedulers.rh import SnipRhScheduler
from repro.experiments.reporting import format_table
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import paper_roadside_scenario
from repro.units import HOUR


def generate_latency_comparison():
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=16.0, epochs=14, seed=19
    )
    variants = {
        "SNIP-AT (2x slack)": SnipAtScheduler(
            scenario.profile, scenario.model,
            zeta_target=32.0, phi_max=scenario.phi_max,
        ),
        "SNIP-AT (exact)": SnipAtScheduler(
            scenario.profile, scenario.model,
            zeta_target=16.0, phi_max=scenario.phi_max,
        ),
        "SNIP-OPT": SnipOptScheduler(
            scenario.profile, scenario.model,
            zeta_target=16.0, phi_max=scenario.phi_max,
        ),
        "SNIP-RH": SnipRhScheduler(
            scenario.profile, scenario.model, initial_contact_length=2.0
        ),
    }
    results = {}
    for name, scheduler in variants.items():
        results[name] = FastRunner(scenario, scheduler).run()
    return results


def test_ablation_latency(once):
    results = once(generate_latency_comparison)
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.metrics.mean_uploaded,
                result.mean_phi,
                result.metrics.mean_delivery_delay / HOUR,
                result.metrics.max_delivery_delay / HOUR,
            ]
        )
    emit(
        format_table(
            ["mechanism", "uploaded/epoch", "Phi/epoch", "mean delay (h)", "max delay (h)"],
            rows,
            title="Ablation: delivery latency vs probing energy, target 16 s/day",
        )
    )
    slack_at = results["SNIP-AT (2x slack)"]
    exact_at = results["SNIP-AT (exact)"]
    rh = results["SNIP-RH"]
    # The trade: RH batches deliveries into rush hours, so it is slower
    # than a slack-provisioned AT but several times cheaper.
    assert rh.metrics.mean_delivery_delay > slack_at.metrics.mean_delivery_delay
    assert rh.mean_phi < slack_at.mean_phi / 3.0
    # The queueing subtlety: zero-slack AT is slower than RH.
    assert exact_at.metrics.mean_delivery_delay > rh.metrics.mean_delivery_delay
    # Everything stays delay-tolerant (mean under half a day).
    for result in results.values():
        assert result.metrics.mean_delivery_delay < 12 * HOUR
