"""Shared helpers for the benchmark harness.

Every bench regenerates one paper figure (or an ablation) and prints the
rows/series the figure plots; pytest-benchmark additionally reports the
wall-clock cost of regenerating it.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a report block, surviving pytest's capture (shown with -s)."""
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are heavy)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return run
