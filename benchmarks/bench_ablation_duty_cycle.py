"""Ablation — sensitivity of SNIP-RH to its duty-cycle choice.

§VI-C argues that ``d_rh = Ton / mean(Tcontact)`` (the knee) maximizes
rush-hour capacity at the smallest per-unit cost, and that ρ "does not
increase abruptly" when d_rh slightly overshoots the knee.  This bench
sweeps a multiplier on the knee duty-cycle and prints the resulting
capacity and cost, both analytically and on the simulator with the
online estimator disabled (fixed prior).

Ported onto the grid executor layer: each multiplier's simulation is one
pure shard mapped by a
:class:`~repro.experiments.parallel.ParallelExecutor`; the analytic
half stays in-process (closed-form arithmetic).
"""

import pytest
from conftest import emit

from repro.core.schedulers.rh import SnipRhScheduler
from repro.core.snip_model import upsilon
from repro.experiments.parallel import ParallelExecutor
from repro.experiments.reporting import format_series
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import paper_roadside_scenario

MULTIPLIERS = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 4.0]
T_ON = 0.02
CONTACT = 2.0
KNEE = T_ON / CONTACT


def _run_duty_cell(multiplier):
    """Executor shard: one fixed-prior simulation at a knee multiplier."""
    scenario = paper_roadside_scenario(
        phi_max_divisor=10,  # effectively unconstrained
        zeta_target=96.0,    # drain everything: probe every contact
        epochs=4,
        seed=5,
    )
    scheduler = SnipRhScheduler(
        scenario.profile,
        scenario.model,
        # Encode the multiplier through the length prior; weight ~0
        # is not allowed, so pick the smallest allowed adaptation.
        initial_contact_length=CONTACT / multiplier,
        ewma_weight=0.01,
    )
    result = FastRunner(scenario, scheduler).run()
    return result.mean_zeta, result.mean_rho


def generate_ablation():
    analytic_capacity = []
    analytic_rho = []
    for multiplier in MULTIPLIERS:
        duty = KNEE * multiplier
        # 48 rush contacts of 2 s per epoch; Phi = Trh * d.
        capacity = 96.0 * upsilon(duty, CONTACT, T_ON)
        phi = 14400.0 * duty
        analytic_capacity.append(capacity)
        analytic_rho.append(phi / capacity)
    pool = ParallelExecutor(jobs=min(4, len(MULTIPLIERS)))
    cells = pool.map(_run_duty_cell, MULTIPLIERS)
    simulated_capacity = [zeta for zeta, _rho in cells]
    simulated_rho = [rho for _zeta, rho in cells]
    return analytic_capacity, analytic_rho, simulated_capacity, simulated_rho


def test_ablation_duty_cycle(once):
    analytic_capacity, analytic_rho, sim_capacity, sim_rho = once(generate_ablation)
    emit(
        format_series(
            "d_rh/knee",
            MULTIPLIERS,
            {
                "zeta analytic": analytic_capacity,
                "zeta simulated": sim_capacity,
                "rho analytic": analytic_rho,
                "rho simulated": sim_rho,
            },
            title="Ablation: SNIP-RH duty-cycle around the knee",
        )
    )
    knee_index = MULTIPLIERS.index(1.0)
    # rho is flat below/at the knee...
    assert analytic_rho[0] == pytest.approx(analytic_rho[knee_index], rel=1e-6)
    # ...rises slowly just above it (the paper's robustness claim)...
    assert analytic_rho[knee_index + 1] / analytic_rho[knee_index] < 1.15
    # ...and clearly above it far past the knee.
    assert analytic_rho[-1] / analytic_rho[knee_index] > 1.8
    # Capacity is monotone in the duty-cycle but with diminishing
    # returns: the capacity-per-duty slope collapses past the knee.
    assert analytic_capacity == sorted(analytic_capacity)
    slope_low = (analytic_capacity[knee_index] - analytic_capacity[0]) / (
        MULTIPLIERS[knee_index] - MULTIPLIERS[0]
    )
    slope_high = (analytic_capacity[-1] - analytic_capacity[knee_index]) / (
        MULTIPLIERS[-1] - MULTIPLIERS[knee_index]
    )
    assert slope_high < slope_low / 2
