"""Baseline — SNIP versus mobile-node-initiated probing (MNIP).

The premise this paper builds on (§III, companion paper [10]): at low
sensor duty-cycles, sensor-initiated probing yields several times more
probed contact capacity than the mobile-initiated baseline.  This bench
sweeps the duty-cycle and prints the Υ ratio, asserting the companion
paper's 2-10x claim in the sub-1% regime.
"""

import pytest
from conftest import emit

from repro.core.snip_model import upsilon
from repro.experiments.reporting import format_series
from repro.protocols.mnip import MnipProbing
from repro.radio.duty_cycle import DutyCycleConfig

T_ON = 0.02
CONTACT = 2.0
DUTIES = [0.001, 0.002, 0.005, 0.01, 0.02, 0.05]


def generate_comparison():
    snip = [upsilon(duty, CONTACT, T_ON) for duty in DUTIES]
    mnip = [
        MnipProbing(
            config=DutyCycleConfig(t_on=T_ON, duty_cycle=duty),
            beacon_period=0.1,
        ).expected_probe_ratio(CONTACT)
        for duty in DUTIES
    ]
    return snip, mnip


def test_mnip_baseline(once):
    snip, mnip = once(generate_comparison)
    ratio = [s / m if m > 0 else float("inf") for s, m in zip(snip, mnip)]
    emit(
        format_series(
            "duty_cycle",
            DUTIES,
            {"SNIP Upsilon": snip, "MNIP Upsilon": mnip, "SNIP/MNIP": ratio},
            title="Baseline: SNIP vs mobile-initiated probing (Tc=2 s)",
        )
    )
    # The companion paper's claim: 2-10x more capacity below 1% duty.
    for duty, gain in zip(DUTIES, ratio):
        if duty <= 0.01:
            assert gain > 2.0, f"duty {duty}: gain {gain}"
    # SNIP dominates everywhere in the sweep.
    assert all(s > m for s, m in zip(snip, mnip))
