"""Ablation — EWMA weight for SNIP-RH's online estimators (§VI-B/C).

The paper prescribes "a small weight ... assigned to the new sample" for
both the contact-length and upload-threshold filters.  This bench sweeps
the weight from very smooth (0.01) to no filtering (1.0) under noisy
contacts (cv = 0.3, three times the paper's jitter) and reports probed
capacity, cost, and the stability of the learned duty-cycle — making
the "small weight" advice quantitative.
"""

import pytest
from conftest import emit

from repro.core.schedulers.rh import SnipRhScheduler
from repro.experiments.reporting import format_series
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import paper_roadside_scenario
import dataclasses

WEIGHTS = [0.01, 0.05, 0.125, 0.25, 0.5, 1.0]


def generate_ablation():
    zetas, rhos, duty_spreads = [], [], []
    for weight in WEIGHTS:
        scenario = paper_roadside_scenario(
            phi_max_divisor=100, zeta_target=32.0, epochs=10, seed=29
        )
        scenario = dataclasses.replace(
            scenario,
            trace_config=dataclasses.replace(scenario.trace_config, cv=0.3),
        )
        scheduler = SnipRhScheduler(
            scenario.profile, scenario.model,
            initial_contact_length=2.0, ewma_weight=weight,
        )
        duties = []
        original = scheduler.on_probe

        def tracked(time, contact, probed, uploaded, _orig=original, _s=scheduler):
            _orig(time, contact, probed, uploaded)
            duties.append(_s.duty_cycle_config().duty_cycle)

        scheduler.on_probe = tracked
        result = FastRunner(scenario, scheduler).run()
        zetas.append(result.mean_zeta)
        rhos.append(result.mean_rho)
        if len(duties) > 1:
            mean = sum(duties) / len(duties)
            variance = sum((d - mean) ** 2 for d in duties) / (len(duties) - 1)
            duty_spreads.append((variance ** 0.5) / mean)
        else:
            duty_spreads.append(0.0)
    return zetas, rhos, duty_spreads


def test_ablation_ewma_weight(once):
    zetas, rhos, duty_spreads = once(generate_ablation)
    emit(
        format_series(
            "weight",
            WEIGHTS,
            {
                "zeta (s)": zetas,
                "rho": rhos,
                "duty-cycle cv": duty_spreads,
            },
            title="Ablation: EWMA new-sample weight under cv=0.3 contacts",
        )
    )
    # Small weights keep the operating duty-cycle stable...
    assert duty_spreads[0] < duty_spreads[-1] / 3
    # ...and every weight still collects the target (the knee is a flat
    # optimum — the paper's robustness claim), within jitter.
    for zeta in zetas:
        assert zeta == pytest.approx(32.0, rel=0.25)
    # Costs stay near the rush floor for the recommended small weights.
    assert rhos[2] < 4.0  # weight 0.125, the default
