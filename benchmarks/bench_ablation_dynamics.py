"""Ablation — SNIP-RH in dynamic environments (§VII-B discussion).

Two dynamics the paper discusses:

* day-to-day variation of each slot's contact capacity (SNIP-RH should
  be insensitive while rush capacity covers the target);
* a seasonal shift of the rush hours (the adaptive variant's background
  probing plus learner decay should re-mark the slots and keep probing).

Printed: per-epoch ζ for static SNIP-RH under rate drift, and for
adaptive SNIP-RH under a 1 h/epoch rush shift; the static scheduler's
collapse under the same shift is the comparison baseline.
"""

import dataclasses

import pytest
from conftest import emit

from repro.core.learning import LearnerConfig
from repro.core.schedulers.adaptive import AdaptiveSnipRhScheduler
from repro.core.schedulers.rh import SnipRhScheduler
from repro.experiments.reporting import format_series
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import paper_roadside_scenario


def run_with_trace_config(scheduler_factory, epochs=10, **trace_overrides):
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=24.0, epochs=epochs, seed=31
    )
    scenario = dataclasses.replace(
        scenario,
        trace_config=dataclasses.replace(
            scenario.trace_config, **trace_overrides
        ),
    )
    result = FastRunner(scenario, scheduler_factory(scenario)).run()
    return [row.zeta for row in result.metrics.epochs]


def static_rh(scenario):
    return SnipRhScheduler(
        scenario.profile, scenario.model, initial_contact_length=2.0
    )


def adaptive_rh(scenario):
    return AdaptiveSnipRhScheduler(
        scenario.profile,
        scenario.model,
        learner_config=LearnerConfig(warmup_epochs=2, decay=0.5),
        learning_duty_cycle=0.002,
        background_duty_cycle=0.0005,
        initial_contact_length=2.0,
    )


def generate_dynamics():
    drift = run_with_trace_config(static_rh, rate_drift_cv=0.3)
    static_shift = run_with_trace_config(
        static_rh, rush_shift_per_epoch=1.0
    )
    adaptive_shift = run_with_trace_config(
        adaptive_rh, rush_shift_per_epoch=1.0
    )
    return drift, static_shift, adaptive_shift


def test_ablation_dynamics(once):
    drift, static_shift, adaptive_shift = once(generate_dynamics)
    epochs = list(range(len(drift)))
    emit(
        format_series(
            "epoch",
            epochs,
            {
                "static RH, rate drift": drift,
                "static RH, rush shift": static_shift,
                "adaptive RH, rush shift": adaptive_shift,
            },
            title="Ablation: zeta per epoch under environment dynamics",
        )
    )
    # Rate drift: the gating keeps zeta near the target despite noisy
    # per-slot capacity (paper: RH "is not sensitive to the variance").
    steady = drift[2:]
    assert sum(steady) / len(steady) == pytest.approx(24.0, rel=0.25)
    # A 1 h/epoch shift drags the real peaks away from the static
    # markings: by the late epochs static RH probes clearly less than
    # the adaptive variant that re-learns its markings.
    static_tail = sum(static_shift[-3:]) / 3
    adaptive_tail = sum(adaptive_shift[-3:]) / 3
    assert adaptive_tail > static_tail * 1.3
