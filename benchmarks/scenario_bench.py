"""Scenario benchmark: grid throughput per named workload.

Runs the same small mechanism × ζtarget grid once per built-in
scenario (the fifth study axis) on the fast engine and emits
``BENCH_scenario.json`` with cells/second per scenario — so a workload
whose profile or contact source makes simulation disproportionately
expensive shows up as a regression on this trajectory.  The
trace-driven scenario is fed a synthesized CSV file, and the streaming
reader itself is measured separately (contacts ingested per second),
pinning the "city-scale inputs are never fully materialized" path.

Usage::

    PYTHONPATH=src python benchmarks/scenario_bench.py            # full sizes
    PYTHONPATH=src python benchmarks/scenario_bench.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/scenario_bench.py --jobs 4 --out BENCH.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.experiments.spec import StudySpec, run_study
from repro.mobility.traces import stream_contacts
from repro.units import DAY


def write_synthetic_csv(path: str, rows: int) -> None:
    """A sorted, schema-valid CSV trace: one short contact per minute."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("start,end,mobile_id\n")
        for index in range(rows):
            start = 60.0 * index
            handle.write(f"{start},{start + 2.5},mobile-{index % 97}\n")


def scenario_entries(trace_path: str):
    """One axes.scenarios entry per built-in workload."""
    return (
        "paper-roadside",
        {"name": "diurnal", "options": {"ratio": 12.0}},
        {
            "name": "trace-driven",
            "options": {"path": trace_path, "repeat_every": DAY},
        },
        "mixed-fleet",
        "flash-crowd",
        "dead-zone",
        "churn",
    )


def bench_grids(entries, *, epochs, replicates, jobs):
    """Time a one-scenario study per entry; return cells/sec per label."""
    throughput = {}
    for entry in entries:
        spec = StudySpec(
            name="scenario-bench",
            zeta_targets=(16.0, 48.0),
            phi_maxes=(DAY / 1000.0,),
            epochs=epochs,
            seed=5,
            replicates=replicates,
            jobs=jobs,
            scenarios=(entry,),
            with_predictions=False,
        )
        label = spec.scenarios[0].name
        start = time.perf_counter()
        run_study(spec, executor=spec.build_transport())
        elapsed = time.perf_counter() - start
        throughput[label] = {
            "cells": spec.total_runs,
            "seconds": round(elapsed, 4),
            "cells_per_sec": round(spec.total_runs / elapsed, 2),
        }
        print(
            f"{label:>15}: {spec.total_runs:3d} cells in {elapsed:6.2f}s "
            f"({throughput[label]['cells_per_sec']} cells/s)"
        )
    return throughput


def bench_ingest(path: str, rows: int) -> dict:
    """Time one full streaming pass over the synthesized trace file."""
    start = time.perf_counter()
    count = sum(1 for _ in stream_contacts(path))
    elapsed = time.perf_counter() - start
    assert count == rows, f"reader saw {count} of {rows} rows"
    result = {
        "contacts": count,
        "seconds": round(elapsed, 4),
        "contacts_per_sec": round(count / elapsed, 1),
    }
    print(
        f"trace ingest: {count} contacts in {elapsed:.2f}s "
        f"({result['contacts_per_sec']} contacts/s)"
    )
    return result


def main(argv=None) -> int:
    """Run the bench and write the BENCH_scenario.json artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per study (default: 1, the honest "
             "per-scenario cost)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (1 epoch, 1 replicate, 20k-row trace) "
             "instead of the full sizes",
    )
    parser.add_argument(
        "--out", default="BENCH_scenario.json",
        help="artifact path (default: BENCH_scenario.json)",
    )
    args = parser.parse_args(argv)

    epochs = 1 if args.quick else 7
    replicates = 1 if args.quick else 3
    rows = 20_000 if args.quick else 200_000

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.csv")
        write_synthetic_csv(trace_path, rows)
        print(
            f"scenario bench: epochs={epochs}, replicates={replicates}, "
            f"jobs={args.jobs}, trace rows={rows}"
        )
        grids = bench_grids(
            scenario_entries(trace_path),
            epochs=epochs, replicates=replicates, jobs=args.jobs,
        )
        ingest = bench_ingest(trace_path, rows)

    artifact = {
        "epochs": epochs,
        "replicates": replicates,
        "jobs": args.jobs,
        "quick": args.quick,
        "grid_cells_per_sec": grids,
        "trace_ingest": ingest,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
