"""Shared study harness for the figure benches.

Every figure bench routes through the declarative study layer
(:func:`repro.experiments.spec.run_study`) here, so the whole benchmark
suite exercises the same orchestration path as the CLI and the library:

* the simulation benches (Figs. 7/8) describe **one shared two-budget
  grid** as a :class:`~repro.experiments.spec.StudySpec` (the same
  study as the checked-in ``examples/paper_study.json``) and run it
  serial-vs-pool (asserted byte-identical per budget, pool path
  asserted actually taken) — the study is memoized per
  parameterisation, so whichever of the pair runs first pays for both
  and the other is a cache lookup;
* the analysis benches (Figs. 5/6) shard the closed-form evaluation
  itself — one pure (budget, mechanism) cell per shard, no simulation —
  over a :class:`~repro.experiments.parallel.SerialExecutor`, keeping
  the executor code path without burying the ~ms arithmetic under
  process-pool startup noise.
"""

from __future__ import annotations

import time

from repro.core.analysis import evaluate_schedulers
from repro.experiments.parallel import ParallelExecutor, SerialExecutor
from repro.experiments.registry import PAPER_MECHANISMS
from repro.experiments.scenario import PAPER_ZETA_TARGETS, paper_roadside_scenario
from repro.experiments.spec import StudySpec, run_study
from repro.units import DAY

TARGETS = list(PAPER_ZETA_TARGETS)
JOBS = 4
METRICS = ("zeta", "phi", "rho")

#: Both paper budgets, figure order: tight (Figs. 5/7), loose (Figs. 6/8).
PAPER_DIVISORS = (1000.0, 100.0)

#: Replicate seeds and epoch count of the Fig. 7/8 simulation grid.
#: Figs. 7 and 8 must use these exact values — together they form the
#: memoization key that lets the pair share one two-budget grid run.
SEEDS = (1, 2, 3)
PAPER_EPOCHS = 14

_GRIDS = {}


def paper_grid_spec(divisors, *, epochs, replicate_seeds, jobs=JOBS):
    """The declarative study behind the Fig. 7/8 benches.

    With the default parameters this is exactly the checked-in
    ``examples/paper_study.json`` — the benches and the shipped study
    file describe one and the same object.
    """
    return StudySpec(
        name="paper-grid-fig7-fig8",
        zeta_targets=tuple(TARGETS),
        phi_maxes=tuple(DAY / divisor for divisor in divisors),
        epochs=epochs,
        seed=replicate_seeds[0],
        mechanisms=PAPER_MECHANISMS,
        engines=("fast",),
        replicates=len(replicate_seeds),
        replicate_seeds=tuple(replicate_seeds),
        jobs=jobs,
    )


def run_paper_grid(divisors, *, epochs, replicate_seeds, jobs=JOBS):
    """Run the (mechanism × ζtarget × Φmax) study serial and pooled.

    Returns ``(grid, serial_seconds, parallel_seconds)`` where *grid* is
    the pooled :class:`~repro.experiments.sweep.GridResult` of the
    study.  Asserts the determinism contract on every budget (pool
    byte-identical to serial) and that the pool path was actually
    taken — a silent serial fallback would make the reported speedup
    meaningless.
    """
    key = (tuple(divisors), epochs, tuple(replicate_seeds), jobs)
    if key in _GRIDS:
        return _GRIDS[key]
    spec = paper_grid_spec(
        divisors, epochs=epochs, replicate_seeds=replicate_seeds, jobs=jobs
    )
    start = time.perf_counter()
    serial = run_study(spec, executor=SerialExecutor()).grid()
    serial_seconds = time.perf_counter() - start
    pool = ParallelExecutor(jobs=jobs)
    start = time.perf_counter()
    parallel = run_study(spec, executor=pool).grid()
    parallel_seconds = time.perf_counter() - start
    assert pool.last_map_parallel, "pool fell back to serial; timing is meaningless"
    for phi_max in spec.phi_maxes:
        for metric in METRICS:
            assert (
                serial.budget(phi_max).series(metric)
                == parallel.budget(phi_max).series(metric)
            ), f"parallel execution changed the {metric} series at Phi_max={phi_max:g}"
    _GRIDS[key] = (parallel, serial_seconds, parallel_seconds)
    return _GRIDS[key]


def simulated_series(divisor, *, epochs, replicate_seeds, jobs=JOBS):
    """One budget's simulated slice of the shared two-budget paper grid.

    Runs (or looks up) :func:`run_paper_grid` over *both* paper budgets
    and slices *divisor*'s, so Figs. 7 and 8 share one grid computation
    and the reported timings cover the full Φmax axis.  Returns
    ``(averaged, predicted, serial_seconds, parallel_seconds)`` with
    ``averaged[mechanism][metric]`` the replicate-averaged series and
    ``predicted[mechanism]`` the paired closed-form points.
    """
    grid, serial_seconds, parallel_seconds = run_paper_grid(
        PAPER_DIVISORS, epochs=epochs, replicate_seeds=replicate_seeds, jobs=jobs
    )
    sweep = grid.budget(DAY / divisor)
    averaged = {
        mechanism: {metric: sweep.series(metric)[mechanism] for metric in METRICS}
        for mechanism in sweep.points
    }
    predicted = {
        mechanism: [point.predicted for point in sweep.points[mechanism]]
        for mechanism in sweep.points
    }
    return averaged, predicted, serial_seconds, parallel_seconds


def _analysis_cell(item):
    """Executor shard: one mechanism's closed-form series at one budget."""
    divisor, mechanism = item
    scenario = paper_roadside_scenario(phi_max_divisor=divisor)
    return evaluate_schedulers(
        scenario.profile,
        scenario.model,
        zeta_targets=TARGETS,
        phi_max=scenario.phi_max,
        mechanisms=[mechanism],
    )[mechanism]


def analysis_points(divisor):
    """Closed-form AnalysisPoints per mechanism for a Fig. 5/6-style bench.

    Each (budget, mechanism) cell is a pure shard mapped over a
    :class:`~repro.experiments.parallel.SerialExecutor` — the analysis
    figures ride the same executor/shard code path as the simulation
    figures while the bench timing keeps measuring the closed-form
    arithmetic itself (a process pool's startup would dominate these
    ~ms cells and drown any real regression).
    """
    cells = SerialExecutor().map(
        _analysis_cell, [(divisor, mechanism) for mechanism in PAPER_MECHANISMS]
    )
    return dict(zip(PAPER_MECHANISMS, cells))
