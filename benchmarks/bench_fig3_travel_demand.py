"""Fig. 3 — temporal distribution of travel demand (motivating data).

The paper reprints Cain et al.'s Midpoint Bridge demand curves to argue
that rush hours exist and survive variable pricing.  This bench
regenerates both hourly series from the parametric synthesizer and
prints them as bars, plus the headline statistics (peak hours; the
peak-to-offpeak ratio before and after pricing).
"""

from conftest import emit

from repro.experiments.reporting import ascii_bars, format_series
from repro.mobility.travel_demand import midpoint_bridge_profile


def generate_fig3():
    fixed = midpoint_bridge_profile(variable_pricing=False)
    variable = midpoint_bridge_profile(variable_pricing=True)
    return {
        "hours": list(range(24)),
        "fixed": fixed.hourly_series(),
        "variable": variable.hourly_series(),
        "fixed_peaks": fixed.peak_hours(),
        "variable_peaks": variable.peak_hours(),
        "fixed_ratio": fixed.peak_to_offpeak_ratio(),
        "variable_ratio": variable.peak_to_offpeak_ratio(),
    }


def test_fig3_travel_demand(once):
    data = once(generate_fig3)
    labels = [f"{hour:02d}:00" for hour in data["hours"]]
    emit(ascii_bars(labels, data["fixed"], title="Fig. 3a  fixed pricing (trips/h)"))
    emit(ascii_bars(labels, data["variable"], title="Fig. 3b  variable pricing (trips/h)"))
    emit(
        format_series(
            "hour",
            data["hours"],
            {"fixed": data["fixed"], "variable": data["variable"]},
            title="Fig. 3  demand series",
        )
    )
    emit(
        f"peak hours (fixed):    {data['fixed_peaks']}\n"
        f"peak hours (variable): {data['variable_peaks']}\n"
        f"peak/off-peak ratio:   {data['fixed_ratio']:.2f} -> "
        f"{data['variable_ratio']:.2f} under variable pricing"
    )
    # Shape assertions: bimodal, commute peaks, pricing flattens but
    # does not remove the peaks.
    assert data["fixed_peaks"] and data["variable_peaks"]
    assert data["variable_ratio"] < data["fixed_ratio"]
