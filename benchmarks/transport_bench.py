"""Transport benchmark: serial vs pool vs file-queue on the paper grid.

Runs the Fig. 7/8 study (the same `StudySpec` as
``examples/paper_study.json``) once per registered built-in transport,
asserts the results are byte-identical — the whole point of the
transport contract — and emits ``BENCH_transport.json`` with the
wall-clock per transport plus the speedup over serial.  This seeds the
benchmark trajectory for the execution layer: future transports (or
regressions in the existing ones) land on the same measurement.

Usage::

    PYTHONPATH=src python benchmarks/transport_bench.py            # full grid
    PYTHONPATH=src python benchmarks/transport_bench.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/transport_bench.py --jobs 8 --out BENCH.json

The file-queue run spawns ``--jobs`` local worker subprocesses against
a private temporary queue, so its timing includes worker startup and
ticket/result (un)pickling — the honest cost of the multi-host path on
one host.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from grid_common import PAPER_DIVISORS, PAPER_EPOCHS, SEEDS, paper_grid_spec  # noqa: E402

from repro.experiments.parallel import available_cpus  # noqa: E402
from repro.experiments.spec import run_study  # noqa: E402
from repro.experiments.transport import resolve_transport  # noqa: E402


def bench_transports(spec, jobs):
    """Time one run of *spec* per transport; assert identical results."""
    timings = {}
    reference_rows = None
    for name in ("serial", "pool", "file-queue"):
        executor = resolve_transport(name, jobs=jobs, batch_size="auto")
        start = time.perf_counter()
        study = run_study(spec, executor=executor)
        timings[name] = time.perf_counter() - start
        rows = study.grid().cell_rows()
        if reference_rows is None:
            reference_rows = rows
        else:
            assert rows == reference_rows, (
                f"transport {name!r} changed the assembled grid"
            )
        distributed = getattr(executor, "last_map_parallel", None)
        print(
            f"{name:>10}: {timings[name]:7.2f}s"
            + ("" if distributed is None else f"  (distributed: {distributed})")
        )
    return timings


def main(argv=None) -> int:
    """Run the bench and write the BENCH_transport.json artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="workers per distributed transport (default: min(4, cpus); "
             "requests beyond the visible CPUs are clamped so the bench "
             "never measures oversubscription by accident)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized grid (2 targets, 2 epochs, 2 seeds) instead of "
             "the full Fig. 7/8 grid",
    )
    parser.add_argument(
        "--out", default="BENCH_transport.json",
        help="artifact path (default: BENCH_transport.json)",
    )
    args = parser.parse_args(argv)

    # Clamp to the visible CPUs: jobs beyond them only measure
    # oversubscription (the original checked-in bench ran jobs=4 on a
    # 1-CPU host, understating pool and file-queue).  Both the request
    # and the effective value land in the artifact.
    jobs_requested = 4 if args.jobs is None else args.jobs
    jobs = max(1, min(jobs_requested, available_cpus()))

    if args.quick:
        spec = paper_grid_spec(
            PAPER_DIVISORS, epochs=2, replicate_seeds=(1, 2), jobs=jobs
        ).with_overrides({"scenario.zeta_targets": [16.0, 24.0]})
    else:
        spec = paper_grid_spec(
            PAPER_DIVISORS, epochs=PAPER_EPOCHS, replicate_seeds=SEEDS,
            jobs=jobs,
        )
    print(
        f"transport bench: {spec.total_runs} runs, jobs={jobs} "
        f"(requested {jobs_requested}), cpus={available_cpus()}"
    )
    timings = bench_transports(spec, jobs)
    serial = timings["serial"]
    artifact = {
        "study": spec.name,
        "total_runs": spec.total_runs,
        "epochs": spec.epochs,
        "jobs_requested": jobs_requested,
        "jobs": jobs,
        "available_cpus": available_cpus(),
        "quick": args.quick,
        "seconds": {name: round(value, 4) for name, value in timings.items()},
        "speedup_vs_serial": {
            name: round(serial / value, 3) if value > 0 else None
            for name, value in timings.items()
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    for name in ("pool", "file-queue"):
        print(
            f"{name} speedup over serial: "
            f"{artifact['speedup_vs_serial'][name]}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
