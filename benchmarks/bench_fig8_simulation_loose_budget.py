"""Fig. 8 — simulation results, Φmax = Tepoch/100.

The loose-budget slice of the same shared two-budget ``sweep_grid`` run
as Fig. 7 (:mod:`grid_common`; a memoized lookup when Fig. 7 ran
first): serial and 4-worker streaming executions must agree
byte-for-byte and the pool path must actually be taken.  Shape pinned:
AT meets every target at ~3x RH's
per-unit cost; RH tracks targets through 48 s and saturates below 56 s
(the rush-capacity cap); OPT stays the cheapest mechanism that meets
each target.
"""

import pytest
from conftest import emit
from grid_common import JOBS, PAPER_EPOCHS, SEEDS, TARGETS, simulated_series

from repro.experiments.parallel import available_cpus
from repro.experiments.reporting import format_series


def generate_fig8():
    averaged, _predicted, serial_seconds, parallel_seconds = simulated_series(
        100, epochs=PAPER_EPOCHS, replicate_seeds=SEEDS
    )
    return averaged, serial_seconds, parallel_seconds


def test_fig8_simulation_loose_budget(once):
    averaged, serial_seconds, parallel_seconds = once(generate_fig8)
    for metric, label in (("zeta", "(a) zeta (s)"), ("phi", "(b) Phi (s)"), ("rho", "(c) rho")):
        series = {name: values[metric] for name, values in averaged.items()}
        emit(
            format_series(
                "zeta_target", TARGETS, series,
                title=(
                    f"Fig. 8{label}, simulated 14 epochs x {len(SEEDS)} seeds, "
                    "Phi_max = Tepoch/100"
                ),
            )
        )
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    emit(
        f"replicated grid wall-clock: serial {serial_seconds:.2f}s, "
        f"{JOBS}-worker pool {parallel_seconds:.2f}s "
        f"(speedup {speedup:.2f}x on {available_cpus()} available CPUs)"
    )
    at = averaged["SNIP-AT"]
    rh = averaged["SNIP-RH"]
    opt = averaged["SNIP-OPT"]
    # AT tracks every target (within simulation noise) at high cost.
    for index, target in enumerate(TARGETS):
        assert at["zeta"][index] == pytest.approx(target, rel=0.15)
    assert at["phi"][-1] > 450.0
    # RH tracks targets up to 48 and saturates below 56.
    for index, target in enumerate(TARGETS[:4]):
        assert rh["zeta"][index] == pytest.approx(target, rel=0.15)
    assert rh["zeta"][-1] < 50.0
    assert rh["zeta"][-1] == pytest.approx(rh["zeta"][-2], rel=0.1)
    # Cost ordering: OPT <= RH << AT on the shared feasible range.
    for index in range(4):
        assert rh["phi"][index] < at["phi"][index] / 2.0
        assert opt["phi"][index] <= rh["phi"][index] * 1.2
    # The paper's factor: AT pays ~3.3x RH per probed second.
    assert at["rho"][1] / rh["rho"][1] == pytest.approx(3.3, rel=0.25)
