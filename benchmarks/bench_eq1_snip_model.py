"""Equation 1 — the SNIP probing model Υ(d, Tcontact).

The substrate result from the companion SNIP paper that this paper's
schedulers are built on.  The bench sweeps duty-cycles across the knee
and prints the closed form next to a Monte-Carlo measurement from the
cycle-accurate engine (real beacon trains over random-phase contacts),
plus the exponential-length variant discussed in footnote 1.
"""

from conftest import emit

from repro.core.snip_model import upsilon, upsilon_exponential_lengths
from repro.experiments.micro import measure_upsilon
from repro.experiments.reporting import format_series
from repro.radio.duty_cycle import DutyCycleConfig

T_ON = 0.02
CONTACT = 2.0
DUTIES = [0.002, 0.005, 0.008, 0.01, 0.015, 0.02, 0.05, 0.1]


def generate_eq1():
    model_values = [upsilon(d, CONTACT, T_ON) for d in DUTIES]
    measured = [
        measure_upsilon(
            DutyCycleConfig(t_on=T_ON, duty_cycle=d),
            CONTACT,
            contact_count=300,
            seed=21,
        ).measured_upsilon
        for d in DUTIES
    ]
    exponential = [
        upsilon_exponential_lengths(d, CONTACT, T_ON) for d in DUTIES
    ]
    return model_values, measured, exponential


def test_eq1_snip_model(once):
    model_values, measured, exponential = once(generate_eq1)
    emit(
        format_series(
            "duty_cycle",
            DUTIES,
            {
                "eq1 (fixed Tc)": model_values,
                "cycle-accurate sim": measured,
                "eq1 (Exp lengths)": exponential,
            },
            title="Eq. 1  Upsilon(d, Tcontact=2 s), Ton=20 ms",
        )
    )
    for model_value, sim_value in zip(model_values, measured):
        assert abs(model_value - sim_value) < 0.06
    # The knee sits at d = 1%: linear below, flattening above.
    knee_index = DUTIES.index(0.01)
    assert model_values[knee_index] == 0.5
    slope_below = (model_values[2] - model_values[0]) / (DUTIES[2] - DUTIES[0])
    slope_above = (model_values[-1] - model_values[-2]) / (DUTIES[-1] - DUTIES[-2])
    assert slope_above < slope_below / 5
