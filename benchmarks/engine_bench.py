"""Engine benchmark: the vectorized engine vs the fast runner.

``BENCH_transport.json`` established that per-cell simulation cost — not
orchestration — dominates the paper grid.  This bench measures the fix:
it runs the identical grid of :class:`~repro.experiments.runner.RunSpec`
cells once with ``engine="fast"`` and once with ``engine="vector"``
(batched through :func:`~repro.experiments.runner.execute_run_specs`,
the entry point that lets the vector engine share trace generation
across a shard), reports the wall-clock per engine and the vector/fast
speedup, and cross-checks the engines' agreement metrics cell by cell.

The artifact records whether the optional numba accelerator was present;
the checked-in ``BENCH_vector.json`` is measured on the **pure-numpy**
path, the one CI exercises.

Usage::

    PYTHONPATH=src python benchmarks/engine_bench.py            # full grid
    PYTHONPATH=src python benchmarks/engine_bench.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/engine_bench.py --out BENCH_vector.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from grid_common import PAPER_DIVISORS, PAPER_EPOCHS, SEEDS, TARGETS  # noqa: E402

from repro.experiments.parallel import available_cpus  # noqa: E402
from repro.experiments.registry import PAPER_MECHANISMS  # noqa: E402
from repro.experiments.runner import RunSpec, execute_run_specs  # noqa: E402
from repro.experiments.scenario import paper_roadside_scenario  # noqa: E402
from repro.experiments.vector import numba_available  # noqa: E402

#: The agreement metrics cross-checked between the engines.
METRICS = ("mean_zeta", "mean_phi", "probed_per_epoch")


def grid_specs(engine, *, divisors, targets, seeds, epochs):
    """The paper grid as one flat shard of RunSpecs for *engine*.

    Flattening order matches the study layer (Φmax outermost, then
    ζtarget, mechanism, replicate) and the seeds pair cell-for-cell
    across engines, so fast and vector simulate identical contact
    processes.
    """
    specs = []
    for divisor in divisors:
        for target in targets:
            for mechanism in PAPER_MECHANISMS:
                for replicate, seed in enumerate(seeds):
                    scenario = paper_roadside_scenario(
                        phi_max_divisor=divisor,
                        zeta_target=target,
                        epochs=epochs,
                        seed=seed,
                    )
                    specs.append(
                        RunSpec(
                            scenario=scenario,
                            mechanism=mechanism,
                            replicate=replicate,
                            engine=engine,
                        )
                    )
    return specs


def _metric(result, name):
    if name == "probed_per_epoch":
        return result.metrics.total_probed / result.metrics.epoch_count
    return float(getattr(result, name))


def _warmup(engine):
    """One untimed tiny run so one-off setup stays out of the timings.

    Both engines get the identical warmup (import costs, and — when the
    optional numba accelerator is present — the vector engine's JIT
    compilation, which would otherwise land inside the timed region).
    """
    scenario = paper_roadside_scenario(
        phi_max_divisor=1000.0, zeta_target=TARGETS[0], epochs=1, seed=1,
    )
    execute_run_specs(
        [RunSpec(scenario=scenario, mechanism="SNIP-AT", engine=engine)]
    )


def main(argv=None) -> int:
    """Run the bench and write the BENCH_vector.json artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized grid (2 targets, 2 epochs, 2 seeds) instead of "
             "the full Fig. 7/8 grid",
    )
    parser.add_argument(
        "--out", default="BENCH_vector.json",
        help="artifact path (default: BENCH_vector.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        targets, seeds, epochs = TARGETS[:2], (1, 2), 2
    else:
        targets, seeds, epochs = TARGETS, SEEDS, PAPER_EPOCHS

    shards = {
        engine: grid_specs(
            engine, divisors=PAPER_DIVISORS, targets=targets,
            seeds=seeds, epochs=epochs,
        )
        for engine in ("fast", "vector")
    }
    total = len(shards["fast"])
    print(
        f"engine bench: {total} runs/engine, epochs={epochs}, "
        f"numba={'yes' if numba_available() else 'no'}"
    )

    seconds = {}
    results = {}
    for engine, specs in shards.items():
        _warmup(engine)
        start = time.perf_counter()
        results[engine] = execute_run_specs(specs)
        seconds[engine] = time.perf_counter() - start
        print(f"{engine:>8}: {seconds[engine]:7.2f}s")

    max_abs_delta = {
        name: max(
            abs(_metric(vec, name) - _metric(fast, name))
            for fast, vec in zip(results["fast"], results["vector"])
        )
        for name in METRICS
    }
    speedup = (
        round(seconds["fast"] / seconds["vector"], 3)
        if seconds["vector"] > 0 else None
    )

    artifact = {
        "study": "engine-bench-fast-vs-vector",
        "total_runs": total,
        "epochs": epochs,
        "jobs": 1,
        "available_cpus": available_cpus(),
        "quick": args.quick,
        "numba": numba_available(),
        "seconds": {name: round(value, 4) for name, value in seconds.items()},
        "speedup_vector_vs_fast": speedup,
        "max_abs_delta": {
            name: float(f"{value:.3e}") for name, value in max_abs_delta.items()
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    print(f"vector speedup over fast: {speedup}x")
    for name, value in max_abs_delta.items():
        print(f"max |delta| {name}: {value:.3e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
