"""Fig. 5 — analysis results, Φmax = Tepoch/1000.

Regenerates all three panels: (a) probed contact capacity ζ, (b) probing
overhead Φ, (c) per-unit cost ρ, versus ζtarget, for SNIP-AT, SNIP-OPT,
SNIP-RH.  Shape pinned: AT is budget-starved at 8.8 s everywhere; RH
matches OPT; both cap at 28.8 s; ρ is 3 versus AT's 9.8.

Ported onto the executor layer via :func:`grid_common.analysis_points`:
each (budget, mechanism) closed-form evaluation is a pure shard mapped
over a ``SerialExecutor``, so the analysis benches share the shard code
path with the simulation benches while the timing stays a measurement
of the analysis arithmetic itself.
"""

import pytest
from conftest import emit
from grid_common import TARGETS, analysis_points

from repro.experiments.reporting import format_series


def generate_fig5():
    return analysis_points(1000)


def test_fig5_analysis_tight_budget(once):
    results = once(generate_fig5)
    for metric, label in (("zeta", "(a) zeta (s)"), ("phi", "(b) Phi (s)"), ("rho", "(c) rho")):
        series = {
            name: [getattr(point, metric) for point in points]
            for name, points in results.items()
        }
        emit(
            format_series(
                "zeta_target", TARGETS, series,
                title=f"Fig. 5{label}, Phi_max = Tepoch/1000 = 86.4 s",
            )
        )
    at = results["SNIP-AT"]
    rh = results["SNIP-RH"]
    opt = results["SNIP-OPT"]
    # Panel (a): AT flat at 8.8; RH == OPT; cap at 28.8.
    assert all(p.zeta == pytest.approx(8.8, rel=1e-3) for p in at)
    for rh_point, opt_point in zip(rh, opt):
        assert rh_point.zeta == pytest.approx(opt_point.zeta, rel=1e-3)
    assert max(p.zeta for p in rh) == pytest.approx(28.8, rel=1e-3)
    # Panel (b): Phi saturates at the budget.
    assert all(p.phi <= 86.4 + 1e-6 for p in at + rh + opt)
    # Panel (c): the cost gap the paper reports.
    assert rh[0].rho == pytest.approx(3.0, rel=1e-3)
    assert at[0].rho == pytest.approx(9.818, rel=1e-3)
