"""End-to-end — rush hours emerge from mobility; SNIP-RH exploits them.

Nothing in this bench hand-marks a rush hour.  A commuter population
generates trips; trips generate per-sensor contacts; the *adaptive*
SNIP-RH learns each node's rush hours from its own probes and exploits
them — versus SNIP-AT sized for the same target on the same traces.
This closes the loop on the paper's whole premise: the diurnal structure
SNIP-RH needs really is produced by regular human mobility (Fig. 1 +
Fig. 3), and the mechanism finds it autonomously (§VII-B).
"""

import pytest
from conftest import emit

from repro.core.learning import LearnerConfig
from repro.core.schedulers.adaptive import AdaptiveSnipRhScheduler
from repro.core.schedulers.at import SnipAtScheduler
from repro.experiments.reporting import format_table
from repro.experiments.scenario import paper_roadside_scenario
from repro.network.agents import CommutePattern, Population
from repro.network.contacts import ContactExtractor
from repro.network.deployment import RoadDeployment
from repro.network.runner import NetworkRunner
from repro.units import DAY

EPOCHS = 10
ROAD = 6000.0


def generate_network_run():
    deployment = RoadDeployment.evenly_spaced(3, ROAD, radio_range=14.0)
    # workdays_per_week=7 keeps every epoch statistically identical, as
    # in the paper's 24 h-epoch model.  With 5-day commuters a sensor
    # node should use Tepoch = 1 week (N = 168 slots) instead — with the
    # daily epoch, statically-marked rush hours burn energy on empty
    # weekend mornings (observable by flipping this parameter).
    population = Population(
        70, ROAD, seed=23,
        pattern=CommutePattern(errand_rate_per_day=0.4, workdays_per_week=7),
    )
    trips = population.trips(days=EPOCHS, epoch_length=DAY)
    report = ContactExtractor(deployment).extract(trips)
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=16.0, epochs=EPOCHS, seed=1
    )

    def adaptive_factory(scn, node_id):
        return AdaptiveSnipRhScheduler(
            scn.profile, scn.model,
            learner_config=LearnerConfig(
                warmup_epochs=2, decay=0.9, ratio_threshold=1.5
            ),
            learning_duty_cycle=0.005,
            background_duty_cycle=0.0003,
            initial_contact_length=2.0,
        )

    def at_factory(scn, node_id):
        return SnipAtScheduler(
            scn.profile, scn.model,
            zeta_target=scn.zeta_target, phi_max=scn.phi_max,
        )

    adaptive = NetworkRunner(
        scenario, report.contacts_by_node, adaptive_factory
    ).run()
    at = NetworkRunner(scenario, report.contacts_by_node, at_factory).run()
    return report, adaptive, at


def test_network_end_to_end(once):
    report, adaptive, at = once(generate_network_run)
    rows = []
    for node_id in sorted(adaptive.outcomes):
        ours = adaptive.outcomes[node_id]
        theirs = at.outcomes[node_id]
        trace = report.contacts_by_node[node_id]
        rows.append(
            [
                node_id,
                len(trace),
                ours.zeta,
                ours.phi,
                theirs.zeta,
                theirs.phi,
                ours.delivery_ratio,
            ]
        )
    emit(
        format_table(
            [
                "node", "contacts",
                "RH-adaptive zeta", "RH-adaptive Phi",
                "AT zeta", "AT Phi", "RH delivery",
            ],
            rows,
            title=(
                "End-to-end: emergent rush hours from 70 commuters, "
                f"{EPOCHS} days, zeta_target = 16 s/day"
            ),
        )
    )
    def tail_rho(network, first_epoch):
        zeta = phi = 0.0
        for outcome in network.outcomes.values():
            for row in outcome.result.metrics.epochs[first_epoch:]:
                zeta += row.zeta
                phi += row.phi
        return phi / zeta if zeta else float("inf")

    # Whole-run economics include the adaptive scheduler's learning tax
    # (epochs 0-2 probe every slot); steady state excludes it.
    steady_adaptive = tail_rho(adaptive, 4)
    steady_at = tail_rho(at, 4)
    emit(
        f"fleet rho whole-run: adaptive-RH {adaptive.fleet_rho:.2f} vs AT "
        f"{at.fleet_rho:.2f}; steady-state (epochs 4+): "
        f"{steady_adaptive:.2f} vs {steady_at:.2f}; suppressed contacts "
        f"(sparse contention): {report.total_suppressed}"
    )
    # The rush-hour structure emerged and was exploited: comparable
    # capacity, and clearly cheaper probing once learning completes.
    assert adaptive.fleet_zeta > 0.7 * at.fleet_zeta
    assert adaptive.fleet_rho < at.fleet_rho
    assert steady_adaptive < 0.75 * steady_at
    # Every node delivered most of its data.
    assert adaptive.mean_delivery_ratio > 0.7
