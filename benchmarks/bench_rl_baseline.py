"""Baseline — reinforcement learning vs SNIP-RH (related work [18][22]).

The paper argues RL duty-cycle controllers learn too slowly at the low
duty-cycles long-lived motes require.  This bench runs a fair tabular
Q-baseline (same feedback, same budget, per-slot states, four duty
levels) against SNIP-RH over four simulated weeks and prints weekly
probed capacity and cost for both, plus what the RL policy eventually
learned.
"""

import pytest
from conftest import emit

from repro.core.schedulers.rh import SnipRhScheduler
from repro.core.schedulers.rl import RlScheduler
from repro.experiments.reporting import format_series
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import paper_roadside_scenario

WEEKS = 4


def weekly_means(rows, metric):
    values = [getattr(row, metric) for row in rows]
    return [
        sum(values[week * 7:(week + 1) * 7]) / 7.0 for week in range(WEEKS)
    ]


def generate_comparison():
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=24.0, epochs=WEEKS * 7, seed=17
    )
    rl = RlScheduler(
        scenario.profile, scenario.model,
        epsilon=0.15, learning_rate=0.25, energy_weight=0.15, seed=5,
    )
    rl_result = FastRunner(scenario, rl).run()
    rh = SnipRhScheduler(
        scenario.profile, scenario.model, initial_contact_length=2.0
    )
    rh_result = FastRunner(scenario, rh).run()
    return scenario, rl, rl_result, rh_result


def test_rl_baseline(once):
    scenario, rl, rl_result, rh_result = once(generate_comparison)
    weeks = list(range(1, WEEKS + 1))
    emit(
        format_series(
            "week",
            weeks,
            {
                "RL zeta": weekly_means(rl_result.metrics.epochs, "zeta"),
                "RH zeta": weekly_means(rh_result.metrics.epochs, "zeta"),
                "RL Phi": weekly_means(rl_result.metrics.epochs, "phi"),
                "RH Phi": weekly_means(rh_result.metrics.epochs, "phi"),
            },
            title="Baseline: tabular RL vs SNIP-RH, zeta_target = 24 s/day",
        )
    )
    emit(
        "RL greedy non-zero slots after 4 weeks: "
        f"{rl.learned_rush_slots()} (true rush: [7, 8, 17, 18])"
    )
    rh_weekly = weekly_means(rh_result.metrics.epochs, "zeta")
    rl_weekly = weekly_means(rl_result.metrics.epochs, "zeta")
    # SNIP-RH is on target from week one.
    assert rh_weekly[0] == pytest.approx(24.0, rel=0.2)
    # The RL controller pays an exploration tax: across the run it
    # either probes less or spends more per probed second than SNIP-RH.
    assert (
        rl_result.mean_zeta < 0.9 * rh_result.mean_zeta
        or rl_result.mean_rho > 1.3 * rh_result.mean_rho
    )
    # Both respect the budget.
    for row in rl_result.metrics.epochs:
        assert row.phi <= scenario.phi_max + 1e-6
