"""Cell-cache benchmark: cold vs warm vs one-axis-edited paper grid.

Runs the Fig. 7/8 study (the same `StudySpec` as
``examples/paper_study.json``) three times against one
content-addressed cache directory (:mod:`repro.cache`):

1. **cold** — empty cache: every cell executes and is stored;
2. **warm** — same study again: every cell must hit (zero computed)
   and the artifact must be byte-identical to the cold run — the
   headline invariant of the cache layer;
3. **edited** — one axis widened (an extra ζtarget): only the new
   cells may execute, everything else hits.

Emits ``BENCH_cache.json`` with the wall-clock of each phase, the
warm-over-cold speedup (the price of a resume), and the hit/computed
partition of the edited run.

Usage::

    PYTHONPATH=src python benchmarks/cache_bench.py            # full grid
    PYTHONPATH=src python benchmarks/cache_bench.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/cache_bench.py --out BENCH.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from grid_common import PAPER_DIVISORS, PAPER_EPOCHS, SEEDS, TARGETS, paper_grid_spec  # noqa: E402

from repro.experiments.spec import run_study  # noqa: E402

#: The extra ζtarget (seconds) the "edited" phase appends to the sweep.
EXTRA_TARGET = 64.0


def timed_run(spec):
    """Run *spec* once; return ``(study, seconds)``."""
    start = time.perf_counter()
    study = run_study(spec)
    return study, time.perf_counter() - start


def bench_cache(spec, edited):
    """Time the cold/warm/edited phases; assert the cache contract."""
    timings = {}
    study_cold, timings["cold"] = timed_run(spec)
    assert study_cold.cells_cached == 0, "cold run hit a non-empty cache"
    print(f"      cold: {timings['cold']:7.2f}s  "
          f"({study_cold.cells_computed} computed)")

    study_warm, timings["warm"] = timed_run(spec)
    assert study_warm.cells_computed == 0, (
        f"warm run recomputed {study_warm.cells_computed} cell(s)"
    )
    assert study_warm.to_json() == study_cold.to_json(), (
        "warm artifact differs from the cold run"
    )
    print(f"      warm: {timings['warm']:7.2f}s  "
          f"({study_warm.cells_cached} hits, byte-identical)")

    study_edited, timings["edited"] = timed_run(edited)
    new_cells = edited.total_runs - spec.total_runs
    assert study_edited.cells_computed == new_cells, (
        f"edited run computed {study_edited.cells_computed} cell(s); "
        f"expected exactly the {new_cells} new ones"
    )
    print(f"    edited: {timings['edited']:7.2f}s  "
          f"({study_edited.cells_cached} hits, "
          f"{study_edited.cells_computed} computed)")
    return timings, study_edited


def main(argv=None) -> int:
    """Run the bench and write the BENCH_cache.json artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per run (default: 1 — the cache layer "
             "itself is transport-agnostic, so serial keeps the "
             "cold/warm delta free of pool startup noise)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized grid (2 targets, 2 epochs, 2 seeds) instead of "
             "the full Fig. 7/8 grid",
    )
    parser.add_argument(
        "--out", default="BENCH_cache.json",
        help="artifact path (default: BENCH_cache.json)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        base = paper_grid_spec(
            PAPER_DIVISORS, epochs=2, replicate_seeds=(1, 2), jobs=args.jobs
        ).with_overrides({"scenario.zeta_targets": [16.0, 24.0]})
    else:
        base = paper_grid_spec(
            PAPER_DIVISORS, epochs=PAPER_EPOCHS, replicate_seeds=SEEDS,
            jobs=args.jobs,
        )

    with tempfile.TemporaryDirectory(prefix="cache-bench-") as cache_dir:
        spec = base.with_overrides({"execution.cache": cache_dir})
        edited = spec.with_overrides({
            "scenario.zeta_targets": list(spec.zeta_targets) + [EXTRA_TARGET],
        })
        print(
            f"cache bench: {spec.total_runs} runs cold/warm, "
            f"{edited.total_runs} edited (+zeta_target={EXTRA_TARGET:g}), "
            f"jobs={args.jobs}"
        )
        timings, study_edited = bench_cache(spec, edited)

    artifact = {
        "study": spec.name,
        "total_runs": spec.total_runs,
        "edited_total_runs": edited.total_runs,
        "epochs": spec.epochs,
        "jobs": args.jobs,
        "quick": args.quick,
        "extra_zeta_target": EXTRA_TARGET,
        "seconds": {name: round(value, 4) for name, value in timings.items()},
        "warm_speedup_vs_cold": (
            round(timings["cold"] / timings["warm"], 3)
            if timings["warm"] > 0 else None
        ),
        "warm_byte_identical": True,  # asserted above
        "edited_cells_cached": study_edited.cells_cached,
        "edited_cells_computed": study_edited.cells_computed,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    print(f"warm speedup over cold: {artifact['warm_speedup_vs_cold']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
