"""Fig. 4 — the benefit surface of probing only during rush hours.

Regenerates the paper's surface ΦAT/Φrh over the grid
(Trh/Tepoch ∈ [0.05, 0.5]) x (frh/fother ∈ [2, 20]) and prints it as a
table (rows: rate ratio, columns: rush fraction).  The paper's reading:
the gain peaks above 10 when rush hours are short and busy.
"""

from conftest import emit

from repro.core.analysis import rush_hour_gain, rush_hour_gain_surface
from repro.experiments.reporting import format_table

FRACTIONS = [x / 100.0 for x in range(5, 51, 5)]
RATIOS = [float(r) for r in range(2, 21, 2)]


def generate_fig4():
    return rush_hour_gain_surface(FRACTIONS, RATIOS)


def test_fig4_rush_hour_gain(once):
    surface = once(generate_fig4)
    headers = ["frh/fother"] + [f"x={fraction:.2f}" for fraction in FRACTIONS]
    rows = [
        [f"{ratio:g}"] + values for ratio, values in zip(RATIOS, surface)
    ]
    emit(format_table(headers, rows, title="Fig. 4  Phi_AT / Phi_rh"))

    # Shape assertions matching the paper's axes (max ~10.3, min ~1).
    peak = max(max(row) for row in surface)
    trough = min(min(row) for row in surface)
    assert 10.0 < peak < 11.0
    assert 1.0 <= trough < 1.6
    # The paper's own evaluation scenario sits at x=1/6, r=6 -> ~3.27.
    paper_point = rush_hour_gain(4 / 24, 6.0)
    emit(f"paper scenario point (x=1/6, r=6): {paper_point:.3f}")
    assert 3.0 < paper_point < 3.6
