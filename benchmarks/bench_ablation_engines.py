"""Ablation — fast contact-driven engine versus cycle-accurate engine.

The Fig. 7/8 reproductions run on the fast engine (beacon arithmetic,
decision-interval energy accrual).  This bench quantifies the
substitution against the cycle-accurate micro engine on an identical
trace, for a feedback-free scheduler (SNIP-AT, engines must agree
closely) and the learning scheduler (SNIP-RH, agreement is statistical),
and reports the speedup that justifies the fast engine.
"""

import time

import pytest
from conftest import emit

from repro.core.schedulers.at import SnipAtScheduler
from repro.core.schedulers.rh import SnipRhScheduler
from repro.experiments.engine import resolve_engine
from repro.experiments.reporting import format_table
from repro.experiments.runner import generate_trace
from repro.experiments.scenario import paper_roadside_scenario


def generate_comparison():
    scenario = paper_roadside_scenario(
        phi_max_divisor=100, zeta_target=24.0, epochs=2, seed=5
    )
    trace = generate_trace(scenario)
    fast_engine = resolve_engine("fast")
    micro_engine = resolve_engine("micro")

    def at():
        return SnipAtScheduler(
            scenario.profile, scenario.model,
            zeta_target=scenario.zeta_target, phi_max=scenario.phi_max,
        )

    def rh():
        return SnipRhScheduler(
            scenario.profile, scenario.model, initial_contact_length=2.0
        )

    rows = []
    speedups = {}
    for name, factory in (("SNIP-AT", at), ("SNIP-RH", rh)):
        start = time.perf_counter()
        fast = fast_engine.run(scenario, factory(), trace=trace)
        fast_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        micro = micro_engine.run(scenario, factory(), trace=trace)
        micro_elapsed = time.perf_counter() - start
        rows.append(
            [name, "fast", fast.mean_zeta, fast.mean_phi, fast_elapsed]
        )
        rows.append(
            [name, "micro", micro.mean_zeta, micro.mean_phi, micro_elapsed]
        )
        speedups[name] = (
            micro_elapsed / fast_elapsed,
            fast,
            micro,
        )
    return rows, speedups


def test_ablation_engines(once):
    rows, speedups = once(generate_comparison)
    emit(
        format_table(
            ["mechanism", "engine", "zeta/epoch", "Phi/epoch", "seconds"],
            rows,
            title="Ablation: fast vs cycle-accurate engine (identical trace)",
        )
    )
    at_speedup, at_fast, at_micro = speedups["SNIP-AT"]
    rh_speedup, rh_fast, rh_micro = speedups["SNIP-RH"]
    emit(f"speedup: SNIP-AT {at_speedup:.0f}x, SNIP-RH {rh_speedup:.0f}x")
    # Feedback-free mechanism: engines agree tightly.
    assert at_fast.mean_phi == pytest.approx(at_micro.mean_phi, rel=0.01)
    assert at_fast.mean_zeta == pytest.approx(at_micro.mean_zeta, rel=0.10)
    # Learning mechanism: same order of magnitude on both axes.
    assert rh_fast.mean_zeta == pytest.approx(rh_micro.mean_zeta, rel=0.3)
    assert rh_fast.mean_phi == pytest.approx(rh_micro.mean_phi, rel=0.4)
    # The fast engine must actually be much faster.
    assert at_speedup > 3.0
