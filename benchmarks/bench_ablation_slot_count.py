"""Ablation — time-slot granularity N (paper §VI-A).

The paper: "With a larger N, Rush Hours can be specified more
accurately, but it takes more effort to identify Rush Hours among these
time-slots."  This bench quantifies the first half of that trade-off:
with rush traffic concentrated in two 2 h windows, how much energy does
a coarse N waste by marking whole oversized slots?

Setup: the true rush windows are 07:00-09:00 and 17:00-19:00 but shifted
by 30 minutes (07:30-09:30 / 17:30-19:30) so they straddle slot
boundaries at every N — the situation where granularity matters.

Ported onto the grid executor layer: each slot count is one pure shard
(a module-level function over picklable ``(slot_count, trace)`` items)
mapped by a :class:`~repro.experiments.parallel.ParallelExecutor`, so
the ablation runs on the same sharded code path as the figure grids.
"""

import pytest
from conftest import emit

from repro.core.schedulers.rh import SnipRhScheduler
from repro.experiments.parallel import ParallelExecutor
from repro.experiments.reporting import format_series
from repro.experiments.runner import FastRunner
from repro.experiments.scenario import Scenario
from repro.core.snip_model import SnipModel
from repro.mobility.profiles import RushHourSpec
from repro.mobility.synthetic import ArrivalStyle, TraceConfig
from repro.mobility.synthetic import SyntheticTraceGenerator
from repro.sim.rng import RandomStreams
from repro.units import DAY

SLOT_COUNTS = [6, 12, 24, 48, 96]
TRUE_WINDOWS = ((7.5, 9.5), (17.5, 19.5))


def make_profile(slot_count):
    return RushHourSpec(
        slot_count=slot_count,
        rush_windows=TRUE_WINDOWS,
        rush_interval=300.0,
        other_interval=1800.0,
        contact_length=2.0,
    ).to_profile()


def _run_slot_cell(item):
    """Executor shard: one slot-count cell against the shared fine trace."""
    slot_count, trace = item
    profile = make_profile(slot_count)
    scenario = Scenario(
        profile=profile,
        model=SnipModel(t_on=0.02),
        phi_max=DAY / 100.0,
        zeta_target=24.0,
        epochs=7,
        trace_config=TraceConfig(style=ArrivalStyle.NORMAL, epochs=7),
        seed=3,
    )
    scheduler = SnipRhScheduler(
        profile, scenario.model, initial_contact_length=2.0
    )
    result = FastRunner(scenario, scheduler, trace=trace).run()
    marked = sum(profile.rush_flags) * profile.slot_length / 3600.0
    return result.mean_zeta, result.mean_phi, marked


def generate_ablation():
    # One shared fine-grained trace: contacts truly follow the shifted
    # windows; each N only changes the *scheduler's* slot marking.
    trace = SyntheticTraceGenerator(
        make_profile(96),
        TraceConfig(style=ArrivalStyle.NORMAL, cv=0.1, epochs=7),
        streams=RandomStreams(3),
    ).generate()
    pool = ParallelExecutor(jobs=min(4, len(SLOT_COUNTS)))
    cells = pool.map(_run_slot_cell, [(n, trace) for n in SLOT_COUNTS])
    zetas, phis, marked_hours = (list(values) for values in zip(*cells))
    return zetas, phis, marked_hours


def test_ablation_slot_count(once):
    zetas, phis, marked_hours = once(generate_ablation)
    emit(
        format_series(
            "N (slots)",
            SLOT_COUNTS,
            {
                "zeta (s)": zetas,
                "Phi (s)": phis,
                "marked hours": marked_hours,
            },
            title="Ablation: slot granularity N, true rush windows offset 30 min",
        )
    )
    # Every granularity still collects the target (rush capacity is
    # ample; SNIP-RH's data gating adapts the probing time).
    for zeta in zetas:
        assert zeta == pytest.approx(24.0, rel=0.25)
    # Finer slots mark fewer off-rush hours: the marked span shrinks
    # monotonically toward the true 4 h as N grows.
    assert marked_hours[0] >= marked_hours[-1]
    assert marked_hours[-1] == pytest.approx(4.0, abs=0.51)
