"""Fig. 7 — simulation results, Φmax = Tepoch/1000.

The paper simulates two weeks in COOJA with normal-jittered contact
processes (cv = 0.1) and plots per-epoch averages.  This bench runs the
same grid as one replicated sweep — three seed replicates per
(mechanism, ζtarget) cell (the paper itself notes "a lot of variance in
simulation results") — executed twice: once in-process and once on a
4-worker process pool.  The two executions must agree byte-for-byte
(the parallel orchestration determinism contract), and the bench
reports the measured wall-clock speedup alongside the three panels and
the analysis prediction.
"""

import time

import pytest
from conftest import emit

from repro.experiments.parallel import (
    ParallelExecutor,
    SerialExecutor,
    available_cpus,
)
from repro.experiments.reporting import format_series
from repro.experiments.scenario import PAPER_ZETA_TARGETS, paper_roadside_scenario
from repro.experiments.sweep import sweep_zeta_targets

TARGETS = list(PAPER_ZETA_TARGETS)
SEEDS = (1, 2, 3)
JOBS = 4
METRICS = ("zeta", "phi", "rho")


def run_grid(divisor):
    base = paper_roadside_scenario(
        phi_max_divisor=divisor, epochs=14, seed=SEEDS[0]
    )
    start = time.perf_counter()
    serial = sweep_zeta_targets(
        base, TARGETS, replicate_seeds=SEEDS, executor=SerialExecutor()
    )
    serial_seconds = time.perf_counter() - start
    pool = ParallelExecutor(jobs=JOBS)
    start = time.perf_counter()
    parallel = sweep_zeta_targets(
        base, TARGETS, replicate_seeds=SEEDS, executor=pool
    )
    parallel_seconds = time.perf_counter() - start
    assert pool.last_map_parallel, "pool fell back to serial; timing is meaningless"
    for metric in METRICS:
        assert serial.series(metric) == parallel.series(metric), (
            f"parallel execution changed the {metric} series"
        )
    averaged = {
        mechanism: {metric: parallel.series(metric)[mechanism] for metric in METRICS}
        for mechanism in parallel.points
    }
    predicted = {
        mechanism: [point.predicted for point in parallel.points[mechanism]]
        for mechanism in parallel.points
    }
    return averaged, predicted, serial_seconds, parallel_seconds


def generate_fig7():
    return run_grid(1000)


def test_fig7_simulation_tight_budget(once):
    averaged, predicted, serial_seconds, parallel_seconds = once(generate_fig7)
    for metric, label in (("zeta", "(a) zeta (s)"), ("phi", "(b) Phi (s)"), ("rho", "(c) rho")):
        series = {name: values[metric] for name, values in averaged.items()}
        emit(
            format_series(
                "zeta_target", TARGETS, series,
                title=(
                    f"Fig. 7{label}, simulated 14 epochs x {len(SEEDS)} seeds, "
                    "Phi_max = Tepoch/1000"
                ),
            )
        )
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    emit(
        f"replicated grid wall-clock: serial {serial_seconds:.2f}s, "
        f"{JOBS}-worker pool {parallel_seconds:.2f}s "
        f"(speedup {speedup:.2f}x on {available_cpus()} available CPUs)"
    )
    if available_cpus() >= JOBS:
        assert speedup > 1.5
    at = averaged["SNIP-AT"]
    rh = averaged["SNIP-RH"]
    opt = averaged["SNIP-OPT"]
    # AT is budget-starved: flat, well under every target.
    assert max(at["zeta"]) < 12.0
    assert max(at["zeta"]) - min(at["zeta"]) < 1.0
    # RH/OPT track the small targets and saturate near the 28.8 s cap.
    assert rh["zeta"][0] == pytest.approx(16.0, rel=0.15)
    assert rh["zeta"][1] == pytest.approx(24.0, rel=0.15)
    assert max(rh["zeta"]) < 32.0
    assert opt["zeta"][1] == pytest.approx(24.0, rel=0.15)
    # The cost gap survives simulation noise.
    assert at["rho"][0] > 2.0 * rh["rho"][0]
    # Budget invariant in every averaged cell.
    for values in averaged.values():
        assert all(phi <= 86.4 + 1e-6 for phi in values["phi"])
    # Simulation tracks the analysis prediction for RH where feasible.
    rh_predicted = [p.zeta for p in predicted["SNIP-RH"][:2]]
    for simulated, analytic in zip(rh["zeta"][:2], rh_predicted):
        assert simulated == pytest.approx(analytic, rel=0.2)
