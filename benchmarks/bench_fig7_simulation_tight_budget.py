"""Fig. 7 — simulation results, Φmax = Tepoch/1000.

The paper simulates two weeks in COOJA with normal-jittered contact
processes (cv = 0.1) and plots per-epoch averages.  This bench runs the
same grid on the fast contact-driven simulator, averaged over three
seeds (the paper itself notes "a lot of variance in simulation
results"), and prints the three panels alongside the analysis
prediction.
"""

import pytest
from conftest import emit

from repro.experiments.reporting import format_series
from repro.experiments.scenario import PAPER_ZETA_TARGETS, paper_roadside_scenario
from repro.experiments.sweep import sweep_zeta_targets

TARGETS = list(PAPER_ZETA_TARGETS)
SEEDS = (1, 2, 3)


def run_grid(divisor):
    sweeps = [
        sweep_zeta_targets(
            paper_roadside_scenario(
                phi_max_divisor=divisor, epochs=14, seed=seed
            ),
            TARGETS,
        )
        for seed in SEEDS
    ]
    averaged = {}
    for mechanism in sweeps[0].points:
        averaged[mechanism] = {
            metric: [
                sum(getattr(sweep.points[mechanism][i], metric) for sweep in sweeps)
                / len(sweeps)
                for i in range(len(TARGETS))
            ]
            for metric in ("zeta", "phi", "rho")
        }
    predicted = {
        mechanism: [point.predicted for point in sweeps[0].points[mechanism]]
        for mechanism in sweeps[0].points
    }
    return averaged, predicted


def generate_fig7():
    return run_grid(1000)


def test_fig7_simulation_tight_budget(once):
    averaged, predicted = once(generate_fig7)
    for metric, label in (("zeta", "(a) zeta (s)"), ("phi", "(b) Phi (s)"), ("rho", "(c) rho")):
        series = {name: values[metric] for name, values in averaged.items()}
        emit(
            format_series(
                "zeta_target", TARGETS, series,
                title=(
                    f"Fig. 7{label}, simulated 14 epochs x {len(SEEDS)} seeds, "
                    "Phi_max = Tepoch/1000"
                ),
            )
        )
    at = averaged["SNIP-AT"]
    rh = averaged["SNIP-RH"]
    opt = averaged["SNIP-OPT"]
    # AT is budget-starved: flat, well under every target.
    assert max(at["zeta"]) < 12.0
    assert max(at["zeta"]) - min(at["zeta"]) < 1.0
    # RH/OPT track the small targets and saturate near the 28.8 s cap.
    assert rh["zeta"][0] == pytest.approx(16.0, rel=0.15)
    assert rh["zeta"][1] == pytest.approx(24.0, rel=0.15)
    assert max(rh["zeta"]) < 32.0
    assert opt["zeta"][1] == pytest.approx(24.0, rel=0.15)
    # The cost gap survives simulation noise.
    assert at["rho"][0] > 2.0 * rh["rho"][0]
    # Budget invariant in every averaged cell.
    for values in averaged.values():
        assert all(phi <= 86.4 + 1e-6 for phi in values["phi"])
    # Simulation tracks the analysis prediction for RH where feasible.
    rh_predicted = [p.zeta for p in predicted["SNIP-RH"][:2]]
    for simulated, analytic in zip(rh["zeta"][:2], rh_predicted):
        assert simulated == pytest.approx(analytic, rel=0.2)
