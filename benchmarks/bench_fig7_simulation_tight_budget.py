"""Fig. 7 — simulation results, Φmax = Tepoch/1000.

The paper simulates two weeks in COOJA with normal-jittered contact
processes (cv = 0.1) and plots per-epoch averages.  This bench runs the
same grid as one replicated sweep — three seed replicates per
(mechanism, ζtarget) cell (the paper itself notes "a lot of variance in
simulation results") — through the shared ``sweep_grid`` harness in
:mod:`grid_common`, which covers **both** paper budgets in one grid
(Fig. 8 reads the other slice from the same memoized run): once
in-process and once on a 4-worker streaming pool, asserted
byte-identical, with the measured wall-clock speedup reported alongside
the three panels and the analysis prediction.
"""

import pytest
from conftest import emit
from grid_common import JOBS, PAPER_EPOCHS, SEEDS, TARGETS, simulated_series

from repro.experiments.parallel import available_cpus
from repro.experiments.reporting import format_series


def generate_fig7():
    return simulated_series(1000, epochs=PAPER_EPOCHS, replicate_seeds=SEEDS)


def test_fig7_simulation_tight_budget(once):
    averaged, predicted, serial_seconds, parallel_seconds = once(generate_fig7)
    for metric, label in (("zeta", "(a) zeta (s)"), ("phi", "(b) Phi (s)"), ("rho", "(c) rho")):
        series = {name: values[metric] for name, values in averaged.items()}
        emit(
            format_series(
                "zeta_target", TARGETS, series,
                title=(
                    f"Fig. 7{label}, simulated 14 epochs x {len(SEEDS)} seeds, "
                    "Phi_max = Tepoch/1000"
                ),
            )
        )
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    emit(
        f"replicated grid wall-clock: serial {serial_seconds:.2f}s, "
        f"{JOBS}-worker pool {parallel_seconds:.2f}s "
        f"(speedup {speedup:.2f}x on {available_cpus()} available CPUs)"
    )
    if available_cpus() >= JOBS:
        assert speedup > 1.5
    at = averaged["SNIP-AT"]
    rh = averaged["SNIP-RH"]
    opt = averaged["SNIP-OPT"]
    # AT is budget-starved: flat, well under every target.
    assert max(at["zeta"]) < 12.0
    assert max(at["zeta"]) - min(at["zeta"]) < 1.0
    # RH/OPT track the small targets and saturate near the 28.8 s cap.
    assert rh["zeta"][0] == pytest.approx(16.0, rel=0.15)
    assert rh["zeta"][1] == pytest.approx(24.0, rel=0.15)
    assert max(rh["zeta"]) < 32.0
    assert opt["zeta"][1] == pytest.approx(24.0, rel=0.15)
    # The cost gap survives simulation noise.
    assert at["rho"][0] > 2.0 * rh["rho"][0]
    # Budget invariant in every averaged cell.
    for values in averaged.values():
        assert all(phi <= 86.4 + 1e-6 for phi in values["phi"])
    # Simulation tracks the analysis prediction for RH where feasible.
    rh_predicted = [p.zeta for p in predicted["SNIP-RH"][:2]]
    for simulated, analytic in zip(rh["zeta"][:2], rh_predicted):
        assert simulated == pytest.approx(analytic, rel=0.2)
